//! Adaptive successive-halving exploration (ASHA-style rung ladder).
//!
//! The exhaustive [`explore`](super::explore) sweep compiles every grid
//! point at full solver effort — fine at 24 points, hopeless at the
//! million-point spaces the lazy [`DseConfig::points`] iterator can now
//! describe. This module spends effort the way the paper's hierarchical
//! exploration does: little on most candidates, full on few.
//!
//! # The rung ladder
//!
//! Rung `r` compiles its surviving points under a per-point wall-clock
//! budget `base_budget × eta^r` (capped at `max_budget`), enforced through
//! the per-job deadline [`CancellationToken`](tapacs_ilp::CancellationToken) plumbing of
//! [`CompileJob::budget`](crate::batch::CompileJob::budget) — so a rung
//! costs bounded wall-clock even on pathological points. Completed points
//! are scored and the top `1/eta` fraction is *promoted* into the next
//! rung at `eta×` the budget:
//!
//! * promotion ranks points by **domination count** (how many clean
//!   points Pareto-dominate them; `0` = the rung's frontier), so a
//!   currently non-dominated point is never dropped — which is exactly
//!   what makes the full-budget ladder provably reproduce the exhaustive
//!   frontier (domination is transitive: a dropped point's dominator
//!   always ranks strictly ahead of it and survives in its place);
//! * ties are broken by a **seeded total order** (an FNV-1a hash of the
//!   point label mixed with [`SearchConfig::seed`], with the unique label
//!   itself as the final key), so promotion is bit-reproducible across
//!   thread counts, shard counts and grid enumeration orders;
//! * a **degraded point is never promoted**: a heuristic incumbent must
//!   not claim a rung slot on the strength of a score the solver never
//!   proved. Budget-expired points (deadline tripped, design completed
//!   through the degradation ladder) are instead *resumed* — carried into
//!   the next rung, at most [`SearchConfig::max_resumes`] times — because
//!   their evaluation is unfinished rather than bad;
//! * the final rung always runs at [`SearchConfig::max_budget`]; its
//!   outcomes form the reported [`DseReport`] (same frontier masking and
//!   [signature](DseReport::frontier_signature) as the exhaustive sweep).
//!
//! # Cache-resumed promotion
//!
//! The persistent [`SolveCache`] is the cross-rung memo and the source of
//! the asymptotic win: every bisection/floorplan ILP a point *completed*
//! within its budget is cached (budget tokens are deliberately excluded
//! from the cache key, and per-level `time_limit_s` stays constant across
//! rungs, so keys match), which means a promoted or resumed point replays
//! its low-budget solves as cache hits and spends the new budget only on
//! the work the old budget could not afford. Rung ≥ 2 hit rates are
//! reported per rung precisely to make that resume visible.
//!
//! # Sharding
//!
//! A rung's points can be split round-robin across `N` shards. Each shard
//! runs as its own batch and persists its cache shard
//! (`solve-cache.shard-<i>.bin`) into [`SearchConfig::cache_dir`]; shards
//! are then merged between rungs via [`SolveCache::merge_from`], whose
//! conflict counters ([`CacheStats::merge_conflicts`]) must stay zero —
//! solves are deterministic, so two shards can never disagree. The
//! in-process executor here runs shards sequentially against the shared
//! process cache (bit-identical results, exercised merge machinery); the
//! `reproduce dse-search --shards N` experiment runs them as real worker
//! processes over the same split/promote/merge code path.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tapacs_ilp::{CacheStats, SolveCache};

use crate::batch::BatchReport;
use crate::dse::{compile_indexed, report_from_outcomes, DseConfig, DseOutcome, DseReport};

/// Tuning knobs of the successive-halving ladder.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Reduction factor: each rung promotes roughly the top `1/eta` of its
    /// completed points and multiplies the budget by `eta`. Clamped to
    /// ≥ 2.
    pub eta: usize,
    /// Per-point wall-clock budget of rung 0.
    pub base_budget: Duration,
    /// Per-point budget of the final rung (the exhaustive sweep's
    /// effective effort). The ladder is `base, base×eta, …` capped here.
    pub max_budget: Duration,
    /// Seed of the promotion tie-break. Two runs with the same seed (and
    /// grid) promote identically; changing it only permutes exact ties.
    pub seed: u64,
    /// Promotion floor: a rung never promotes fewer than this many clean
    /// points (when it has them), so the ladder cannot collapse below a
    /// useful frontier candidate set.
    pub min_survivors: usize,
    /// How many times a budget-expired point may be resumed at a higher
    /// rung before it is dropped as pathological. Bounds the worst-case
    /// spend on a point that never finishes.
    pub max_resumes: u32,
    /// Shards per rung (≤ 1 = unsharded). See the module docs.
    pub shards: usize,
    /// Directory for cache shard files; `None` disables shard persistence
    /// (shards still split the rung, the merge step is skipped).
    pub cache_dir: Option<PathBuf>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            eta: 3,
            base_budget: Duration::from_secs(2),
            max_budget: Duration::from_secs(30),
            seed: 0x7a7a_c5c5,
            min_survivors: 2,
            max_resumes: 2,
            shards: 1,
            cache_dir: None,
        }
    }
}

impl SearchConfig {
    /// The rung budget ladder: `base, base×eta, …`, capped at (and always
    /// ending with) `max_budget`.
    pub fn budgets(&self) -> Vec<Duration> {
        let eta = self.eta.max(2) as u32;
        let mut budgets = Vec::new();
        let mut b = self.base_budget.max(Duration::from_micros(1));
        loop {
            budgets.push(b.min(self.max_budget));
            if b >= self.max_budget {
                return budgets;
            }
            b = b.saturating_mul(eta);
        }
    }
}

/// One rung's identity, handed to the rung executor.
#[derive(Debug, Clone, Copy)]
pub struct RungSpec {
    /// Rung index, 0-based.
    pub index: usize,
    /// Per-point budget of this rung.
    pub budget: Duration,
    /// Whether this is the ladder's last rung (runs at `max_budget`; its
    /// outcomes become the final report).
    pub is_final: bool,
}

/// What a rung executor returns: the evaluated points (grid index +
/// outcome, any order — the driver sorts), plus batch metadata.
#[derive(Debug, Clone)]
pub struct RungOutcome {
    /// `(grid index, outcome)` per evaluated point.
    pub outcomes: Vec<(usize, DseOutcome)>,
    /// Worker threads the rung's batches used.
    pub threads: usize,
    /// Solve-cache lookup delta attributed to this rung (resume hits show
    /// up here from rung 1 on).
    pub cache: CacheStats,
    /// Shard-merge conflicts observed while merging this rung's shards
    /// (must stay 0; surfaced loudly in reports).
    pub merge_conflicts: u64,
    /// Wall-clock of the whole rung.
    pub wall: Duration,
}

/// Per-rung accounting in the [`SearchReport`].
#[derive(Debug, Clone)]
pub struct RungReport {
    /// Rung index, 0-based.
    pub index: usize,
    /// Per-point budget of this rung.
    pub budget: Duration,
    /// Points evaluated in this rung.
    pub points: usize,
    /// Points that completed cleanly (scored, not degraded).
    pub clean: usize,
    /// Points cut off by the rung budget (resumable).
    pub budget_expired: usize,
    /// Points degraded for non-budget reasons (dropped, never promoted).
    pub degraded: usize,
    /// Points that failed to compile (dropped).
    pub failed: usize,
    /// Clean points promoted into the next rung (0 for the final rung).
    pub promoted: usize,
    /// Budget-expired points carried into the next rung to resume.
    pub resumed: usize,
    /// Solve-cache delta of this rung.
    pub cache: CacheStats,
    /// Shard-merge conflicts observed in this rung (must stay 0).
    pub merge_conflicts: u64,
    /// Wall-clock of this rung.
    pub wall: Duration,
}

/// Outcome of one [`explore_adaptive`] run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The sweep's label (from the grid).
    pub name: String,
    /// Full grid cardinality (rung 0 size).
    pub grid_points: usize,
    /// Reduction factor used.
    pub eta: usize,
    /// Promotion tie-break seed used.
    pub seed: u64,
    /// Shards per rung.
    pub shards: usize,
    /// Per-rung accounting, in ladder order.
    pub rungs: Vec<RungReport>,
    /// The final rung's outcomes as a regular [`DseReport`] — same
    /// frontier masking, same signature function as the exhaustive sweep.
    pub final_report: DseReport,
    /// Total compile jobs across all rungs (re-compiles of promoted
    /// points count; their solves replay from cache).
    pub total_compiles: usize,
    /// Wall-clock of the whole ladder.
    pub wall: Duration,
}

impl SearchReport {
    /// The final frontier's canonical signature (bit-exact, enumeration
    /// order invariant — see [`DseReport::frontier_signature`]).
    pub fn frontier_signature(&self) -> String {
        self.final_report.frontier_signature()
    }

    /// Total shard-merge conflicts across all rungs (must be 0).
    pub fn merge_conflicts(&self) -> u64 {
        self.rungs.iter().map(|r| r.merge_conflicts).sum()
    }

    /// ASCII rendering: the rung ladder, then the final frontier table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "adaptive DSE `{}`: {} grid point(s), eta {}, {} shard(s), seed {:#x}\n",
            self.name, self.grid_points, self.eta, self.shards, self.seed
        );
        s.push_str(
            "  rung  budget(s)  points  clean  expired  degraded  failed  promoted  resumed  hit-rate  wall(s)\n",
        );
        for r in &self.rungs {
            let _ = writeln!(
                s,
                "  {:<5} {:<10.3} {:<7} {:<6} {:<8} {:<9} {:<7} {:<9} {:<8} {:<9} {:.3}",
                r.index,
                r.budget.as_secs_f64(),
                r.points,
                r.clean,
                r.budget_expired,
                r.degraded,
                r.failed,
                r.promoted,
                r.resumed,
                format!("{:.0}%", r.cache.hit_rate() * 100.0),
                r.wall.as_secs_f64(),
            );
        }
        let _ = writeln!(
            s,
            "ladder: {} compile(s) over {} rung(s) in {:.3}s; shard-merge conflicts: {}",
            self.total_compiles,
            self.rungs.len(),
            self.wall.as_secs_f64(),
            self.merge_conflicts(),
        );
        // Per-point rows stop being readable (and start being megabytes)
        // on generated grids; wide finals get the deduplicated summary.
        if self.final_report.outcomes.len() > 64 {
            s.push_str(&self.final_report.render_summary());
        } else {
            s.push_str(&self.final_report.render_table());
        }
        s
    }
}

/// Seeded FNV-1a over the point label: the promotion tie-break. A pure
/// function of `(seed, label)` — independent of timing, thread count and
/// enumeration order — so exact score ties settle identically everywhere.
fn tie_break(seed: u64, label: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed.rotate_left(17);
    for &b in label.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What [`promote`] decided about one rung.
#[derive(Debug, Clone, Default)]
pub struct Promotion {
    /// Grid indices promoted into the next rung, in rank order (domination
    /// count, then seeded tie-break, then label).
    pub promoted: Vec<usize>,
    /// Grid indices of budget-expired points (the driver resumes those
    /// still within their resume allowance), ascending.
    pub expired: Vec<usize>,
    /// Clean points cut by the `1/eta` reduction.
    pub cut: usize,
    /// Points dropped as organically degraded (never promoted) or failed.
    pub dropped: usize,
}

/// Ranks a rung's outcomes and selects the promotion set: the top
/// `max(ceil(clean/eta), |frontier|, min_survivors)` clean points by
/// `(domination count, seeded tie-break, label)`. Degraded and failed
/// points are never promoted; budget-expired points are returned
/// separately for the resume path. Pure and deterministic — see the
/// module docs for why this preserves the exhaustive frontier at full
/// budget.
pub fn promote(
    outcomes: &[(usize, DseOutcome)],
    eta: usize,
    seed: u64,
    min_survivors: usize,
) -> Promotion {
    let eta = eta.max(2);
    let mut promotion = Promotion::default();

    // Partition the rung. `clean` keeps (grid index, label, score).
    let mut clean: Vec<(usize, String, super::DseScore)> = Vec::new();
    for (idx, o) in outcomes {
        match (&o.score, o.degraded, o.budget_expired) {
            (Some(score), false, false) => clean.push((*idx, o.point.label(), *score)),
            _ if o.budget_expired => promotion.expired.push(*idx),
            _ => promotion.dropped += 1,
        }
    }
    promotion.expired.sort_unstable();

    // Domination count per clean point: 0 = this rung's frontier. O(n²)
    // exact-comparison pass, like `pareto_frontier` — ~1e8 cheap compares
    // at the 10k-point rung 0, amortized to nothing afterwards.
    let n = clean.len();
    let mut dominated_by = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if j != i && clean[j].2.dominates(&clean[i].2) {
                dominated_by[i] += 1;
            }
        }
    }
    let frontier_len = dominated_by.iter().filter(|&&d| d == 0).count();

    let target = n.div_ceil(eta).max(frontier_len).max(min_survivors.min(n));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        (dominated_by[a], tie_break(seed, &clean[a].1), &clean[a].1).cmp(&(
            dominated_by[b],
            tie_break(seed, &clean[b].1),
            &clean[b].1,
        ))
    });
    promotion.promoted = order[..target.min(n)].iter().map(|&i| clean[i].0).collect();
    promotion.cut = n - promotion.promoted.len();
    promotion
}

/// Round-robin split of a rung's grid indices across `shards` workers.
/// Deterministic, order-preserving within each shard, and every index
/// lands in exactly one shard.
pub fn shard_split(indices: &[usize], shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.max(1).min(indices.len().max(1));
    let mut split = vec![Vec::with_capacity(indices.len() / shards + 1); shards];
    for (i, &idx) in indices.iter().enumerate() {
        split[i % shards].push(idx);
    }
    split
}

/// File name of shard `i`'s persisted cache inside the search cache dir.
pub fn shard_cache_file(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("solve-cache.shard-{shard}.bin"))
}

/// Compiles one shard of a rung: the given grid indices under `budget`.
/// Thin public wrapper over the batch path so out-of-process shard
/// workers (`reproduce dse-search-shard`) run exactly the in-process
/// code. Outcomes come back in `indices` order.
pub fn compile_rung_shard(
    grid: &DseConfig,
    indices: &[usize],
    budget: Option<Duration>,
) -> (Vec<DseOutcome>, BatchReport) {
    compile_indexed(grid, indices, budget)
}

/// The in-process rung executor: shards sequentially against the shared
/// process cache, persisting and merging shard cache files when a cache
/// dir is configured.
fn run_rung_in_process(
    grid: &DseConfig,
    cfg: &SearchConfig,
    spec: &RungSpec,
    survivors: &[usize],
) -> RungOutcome {
    let cache = SolveCache::global();
    let before = cache.stats();
    let t0 = Instant::now();
    let budget = (!spec.is_final).then_some(spec.budget);

    let mut outcomes = Vec::with_capacity(survivors.len());
    let mut threads = 1;
    let shards = shard_split(survivors, cfg.shards);
    for (s, shard) in shards.iter().enumerate() {
        if shard.is_empty() {
            continue;
        }
        let (shard_outcomes, report) = compile_indexed(grid, shard, budget);
        threads = threads.max(report.threads);
        outcomes.extend(shard.iter().copied().zip(shard_outcomes));
        if let (Some(dir), true) = (&cfg.cache_dir, shards.len() > 1) {
            // Persist this shard's view; ignore IO trouble (the search
            // still has every entry in the shared process cache).
            let _ = cache.save_to(&shard_cache_file(dir, s));
        }
    }

    // Merge the shard files back — a no-op for content here (the process
    // cache already holds everything) but the exact merge path the
    // multi-process driver relies on, conflict accounting included.
    let mut merge_conflicts = 0;
    if let Some(dir) = &cfg.cache_dir {
        if shards.len() > 1 {
            for s in 0..shards.len() {
                if let Ok(merge) = cache.merge_from(&shard_cache_file(dir, s)) {
                    merge_conflicts += merge.conflicts;
                }
            }
        }
    }

    RungOutcome {
        outcomes,
        threads,
        cache: cache.stats().since(&before),
        merge_conflicts,
        wall: t0.elapsed(),
    }
}

/// Runs the successive-halving ladder with a caller-supplied rung
/// executor (the multi-process `reproduce dse-search` driver plugs in
/// process-spawning here; [`explore_adaptive`] plugs in the in-process
/// one). The driver — budgets, promotion, resume bookkeeping, reporting —
/// is identical either way, which is what makes 1-vs-N-shard runs
/// bit-comparable.
pub fn explore_adaptive_with<F>(
    grid: &DseConfig,
    cfg: &SearchConfig,
    mut run_rung: F,
) -> SearchReport
where
    F: FnMut(&RungSpec, &[usize]) -> RungOutcome,
{
    let budgets = cfg.budgets();
    let t0 = Instant::now();
    let mut survivors: Vec<usize> = (0..grid.num_points()).collect();
    let mut resumes: HashMap<usize, u32> = HashMap::new();
    let mut rungs: Vec<RungReport> = Vec::new();
    let mut total_compiles = 0usize;
    let mut final_rung: Option<(RungOutcome, Vec<(usize, DseOutcome)>)> = None;

    let mut r = 0usize;
    while r < budgets.len() {
        let is_final = r + 1 == budgets.len() || survivors.is_empty();
        let spec = RungSpec { index: rungs.len(), budget: budgets[r], is_final };
        let mut out = run_rung(&spec, &survivors);
        // Deterministic downstream processing regardless of shard/thread
        // interleaving: everything keys off the grid index order.
        out.outcomes.sort_unstable_by_key(|(idx, _)| *idx);
        total_compiles += out.outcomes.len();

        let clean = out
            .outcomes
            .iter()
            .filter(|(_, o)| o.score.is_some() && !o.degraded && !o.budget_expired)
            .count();
        let expired = out.outcomes.iter().filter(|(_, o)| o.budget_expired).count();
        let degraded = out.outcomes.iter().filter(|(_, o)| o.degraded && !o.budget_expired).count();
        let failed =
            out.outcomes.iter().filter(|(_, o)| o.score.is_none() && !o.budget_expired).count();

        if is_final {
            rungs.push(RungReport {
                index: spec.index,
                budget: spec.budget,
                points: out.outcomes.len(),
                clean,
                budget_expired: expired,
                degraded,
                failed,
                promoted: 0,
                resumed: 0,
                cache: out.cache,
                merge_conflicts: out.merge_conflicts,
                wall: out.wall,
            });
            let outcomes = out.outcomes.clone();
            final_rung = Some((out, outcomes));
            break;
        }

        let promo = promote(&out.outcomes, cfg.eta, cfg.seed, cfg.min_survivors);
        // Resume budget-expired points while their allowance lasts: their
        // evaluation is unfinished, not bad — the next rung's budget plus
        // the cache replay of their completed solves finishes the job.
        let mut resumed: Vec<usize> = Vec::new();
        for &idx in &promo.expired {
            let strikes = resumes.entry(idx).or_insert(0);
            *strikes += 1;
            if *strikes <= cfg.max_resumes {
                resumed.push(idx);
            }
        }

        rungs.push(RungReport {
            index: spec.index,
            budget: spec.budget,
            points: out.outcomes.len(),
            clean,
            budget_expired: expired,
            degraded,
            failed,
            promoted: promo.promoted.len(),
            resumed: resumed.len(),
            cache: out.cache,
            merge_conflicts: out.merge_conflicts,
            wall: out.wall,
        });

        survivors = promo.promoted;
        survivors.extend(resumed);
        survivors.sort_unstable();
        survivors.dedup();
        // Nothing left to narrow: jump straight to the full-budget rung
        // (intermediate rungs would only replay the same cached solves).
        if survivors.len() <= cfg.min_survivors.max(1) {
            r = budgets.len() - 1;
        } else {
            r += 1;
        }
    }

    let (final_out, final_outcomes) = final_rung.unwrap_or_else(|| {
        // Degenerate ladder (empty grid): an empty final rung.
        (
            RungOutcome {
                outcomes: Vec::new(),
                threads: 1,
                cache: CacheStats::default(),
                merge_conflicts: 0,
                wall: Duration::ZERO,
            },
            Vec::new(),
        )
    });

    let final_report = report_from_outcomes(
        grid.name.clone(),
        final_outcomes.into_iter().map(|(_, o)| o).collect(),
        final_out.threads,
        final_out.wall,
        final_out.cache,
    );

    SearchReport {
        name: grid.name.clone(),
        grid_points: grid.num_points(),
        eta: cfg.eta.max(2),
        seed: cfg.seed,
        shards: cfg.shards.max(1),
        rungs,
        final_report,
        total_compiles,
        wall: t0.elapsed(),
    }
}

/// Runs the full adaptive ladder in-process (sequential shards against
/// the shared process cache). See the module docs; the multi-process
/// variant lives in the `reproduce dse-search` experiment.
pub fn explore_adaptive(grid: &DseConfig, cfg: &SearchConfig) -> SearchReport {
    explore_adaptive_with(grid, cfg, |spec, survivors| {
        run_rung_in_process(grid, cfg, spec, survivors)
    })
}
