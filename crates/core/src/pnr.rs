//! Step 7 — "bitstream generation": the virtual place-and-route.
//!
//! With no vendor CAD stack, timing closure is computed analytically from
//! the same physical effects the paper credits (§2): wirelength between
//! floorplanned slots, die crossings, and congestion of oversubscribed
//! slots — most prominently the HBM shoreline die where every memory port
//! must land.
//!
//! * The Vitis-like flow pays the **full unpipelined** delay of every net:
//!   HLS "cannot correctly estimate the final placement … and inserts an
//!   insufficient number of clock boundaries".
//! * The TAPA flows pay only the **worst pipelined segment** per net
//!   (registers at every slot crossing).
//!
//! Achieved frequency per FPGA is `min(F_max, 1/critical_delay)`. A slot
//! pushed past [`ROUTABLE_LIMIT`] fails routing outright, mirroring the
//! paper's unroutable single-FPGA configurations.

use serde::{Deserialize, Serialize};
use tapacs_fpga::{Device, Resources, SlotId, TimingModel};
use tapacs_graph::TaskGraph;

use crate::error::CompileError;

/// Slot utilization beyond which routing fails (§3: the 512-bit/128 KB KNN
/// "results in very high resource utilization in the lower die, leading to
/// a failure in the routing phase").
pub const ROUTABLE_LIMIT: f64 = 0.95;

/// Timing-closure results for a placed design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingReport {
    /// Achieved frequency per FPGA in MHz.
    pub freq_mhz: Vec<f64>,
    /// Critical (worst) delay per FPGA in ns.
    pub critical_delay_ns: Vec<f64>,
    /// Name of the critical net per FPGA.
    pub critical_net: Vec<Option<String>>,
    /// Per-FPGA, per-slot utilization (max over resource kinds; slot index
    /// = `row × cols + col`).
    pub slot_utilization: Vec<Vec<f64>>,
}

impl TimingReport {
    /// The design clock: the slowest FPGA's frequency.
    pub fn design_freq_mhz(&self) -> f64 {
        self.freq_mhz.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Worst slot utilization across the whole design.
    pub fn worst_slot_utilization(&self) -> f64 {
        self.slot_utilization.iter().flatten().copied().fold(0.0, f64::max)
    }
}

/// Runs static timing on a placed design.
///
/// `extra_per_fpga` charges fixed IP overheads (AlveoLink) to the QSFP
/// corner slot of each FPGA.
///
/// # Errors
///
/// [`CompileError::RoutingFailure`] when any slot exceeds
/// [`ROUTABLE_LIMIT`].
#[allow(clippy::too_many_arguments)] // mirrors the seven-step pipeline's hand-off
pub fn analyze(
    graph: &TaskGraph,
    assignment: &[usize],
    slot_of_task: &[SlotId],
    n_fpgas: usize,
    device: &Device,
    pipelined: bool,
    extra_per_fpga: &[Resources],
    timing: &TimingModel,
) -> Result<TimingReport, CompileError> {
    assert_eq!(assignment.len(), graph.num_tasks());
    assert_eq!(slot_of_task.len(), graph.num_tasks());

    let cols = device.cols();
    let n_slots = device.num_slots();
    let slot_idx = |s: SlotId| s.row * cols + s.col;

    // --- Slot occupancy ----------------------------------------------------
    let mut used = vec![vec![Resources::ZERO; n_slots]; n_fpgas];
    for (id, t) in graph.tasks() {
        used[assignment[id.index()]][slot_idx(slot_of_task[id.index()])] += t.resources;
    }
    // Networking IP lives by the QSFP shoreline (top-right slot).
    let qsfp_slot = slot_idx(SlotId::new(device.rows() - 1, cols - 1));
    for (f, extra) in extra_per_fpga.iter().enumerate().take(n_fpgas) {
        used[f][qsfp_slot] += *extra;
    }

    let mut slot_utilization = vec![vec![0.0; n_slots]; n_fpgas];
    for f in 0..n_fpgas {
        for (i, slot) in device.slots().enumerate() {
            let u = used[f][i].utilization(&device.slot_capacity(slot)).max();
            slot_utilization[f][i] = u;
            if u > ROUTABLE_LIMIT {
                return Err(CompileError::RoutingFailure { fpga: f, worst_utilization: u });
            }
        }
    }

    // --- Net delays ----------------------------------------------------------
    let mut critical_delay_ns = vec![0.0f64; n_fpgas];
    let mut critical_net: Vec<Option<String>> = vec![None; n_fpgas];

    // Every task contributes its local logic path through its slot.
    for (id, t) in graph.tasks() {
        let f = assignment[id.index()];
        let u = slot_utilization[f][slot_idx(slot_of_task[id.index()])];
        let d = timing.net_delay_ns(0, 0, u);
        if d > critical_delay_ns[f] {
            critical_delay_ns[f] = d;
            critical_net[f] = Some(format!("{} (local)", t.name));
        }
    }

    // FIFO nets between slots of the same FPGA.
    for (_, fifo) in graph.fifos() {
        let (fa, fb) = (assignment[fifo.src.index()], assignment[fifo.dst.index()]);
        if fa != fb {
            continue; // network channel: not an on-chip net
        }
        let (sa, sb) = (slot_of_task[fifo.src.index()], slot_of_task[fifo.dst.index()]);
        let hops = sa.manhattan(&sb);
        let dies = sa.die_crossings(&sb);
        let u = slot_utilization[fa][slot_idx(sa)].max(slot_utilization[fa][slot_idx(sb)]);
        let d = if pipelined {
            timing.pipelined_net_delay_ns(hops, dies, u)
        } else {
            timing.net_delay_ns(hops, dies, u)
        };
        if d > critical_delay_ns[fa] {
            critical_delay_ns[fa] = d;
            critical_net[fa] = Some(fifo.name.clone());
        }
    }

    let freq_mhz =
        critical_delay_ns
            .iter()
            .map(|&d| {
                if d <= 0.0 {
                    device.fmax_mhz()
                } else {
                    timing.frequency_mhz(d, device.fmax_mhz())
                }
            })
            .collect();

    Ok(TimingReport { freq_mhz, critical_delay_ns, critical_net, slot_utilization })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_graph::{Fifo, Task};

    fn device() -> Device {
        Device::u55c()
    }

    fn small_graph(res: Resources) -> TaskGraph {
        let mut g = TaskGraph::new("g");
        let a = g.add_task(Task::compute("a", res));
        let b = g.add_task(Task::compute("b", res));
        g.add_fifo(Fifo::new("ab", a, b, 512));
        g
    }

    #[test]
    fn uncongested_pipelined_design_hits_fmax() {
        let g = small_graph(Resources::new(10_000, 20_000, 20, 40, 4));
        let slots = vec![SlotId::new(0, 0), SlotId::new(2, 1)];
        let rep = analyze(
            &g,
            &[0, 0],
            &slots,
            1,
            &device(),
            true,
            &[Resources::ZERO],
            &TimingModel::default(),
        )
        .unwrap();
        assert_eq!(rep.design_freq_mhz(), 300.0);
    }

    #[test]
    fn unpipelined_long_net_loses_frequency() {
        let g = small_graph(Resources::new(10_000, 20_000, 20, 40, 4));
        let slots = vec![SlotId::new(0, 0), SlotId::new(2, 1)];
        let t = TimingModel::default();
        let piped =
            analyze(&g, &[0, 0], &slots, 1, &device(), true, &[Resources::ZERO], &t).unwrap();
        let flat =
            analyze(&g, &[0, 0], &slots, 1, &device(), false, &[Resources::ZERO], &t).unwrap();
        assert!(flat.design_freq_mhz() <= piped.design_freq_mhz());
        assert_eq!(flat.critical_net[0].as_deref(), Some("ab"));
    }

    #[test]
    fn congestion_lowers_frequency() {
        // ~88% of one slot → heavy congestion penalty.
        let slot_cap = device().slot_capacity(SlotId::new(0, 0));
        let heavy = slot_cap.scale(0.44);
        let g = small_graph(heavy);
        let slots = vec![SlotId::new(0, 0), SlotId::new(0, 0)];
        let rep = analyze(
            &g,
            &[0, 0],
            &slots,
            1,
            &device(),
            true,
            &[Resources::ZERO],
            &TimingModel::default(),
        )
        .unwrap();
        assert!(
            rep.design_freq_mhz() < 230.0,
            "congested slot should throttle: {}",
            rep.design_freq_mhz()
        );
        assert!(rep.worst_slot_utilization() > 0.85);
    }

    #[test]
    fn oversubscribed_slot_fails_routing() {
        let slot_cap = device().slot_capacity(SlotId::new(1, 0));
        let g = small_graph(slot_cap.scale(0.49));
        // Both tasks into one slot → ~98% > ROUTABLE_LIMIT.
        let slots = vec![SlotId::new(1, 0), SlotId::new(1, 0)];
        let err = analyze(
            &g,
            &[0, 0],
            &slots,
            1,
            &device(),
            true,
            &[Resources::ZERO],
            &TimingModel::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::RoutingFailure { fpga: 0, .. }));
    }

    #[test]
    fn network_overhead_charged_to_qsfp_slot() {
        let g = small_graph(Resources::new(1_000, 2_000, 2, 4, 0));
        let slots = vec![SlotId::new(0, 0), SlotId::new(0, 0)];
        let extra = Resources::new(110_000, 170_000, 100, 0, 0);
        let rep =
            analyze(&g, &[0, 0], &slots, 1, &device(), true, &[extra], &TimingModel::default())
                .unwrap();
        let qsfp = (device().rows() - 1) * device().cols() + device().cols() - 1;
        assert!(rep.slot_utilization[0][qsfp] > 0.5);
    }

    #[test]
    fn per_fpga_frequencies_independent() {
        // FPGA 0 congested, FPGA 1 light → different clocks.
        let slot_cap = device().slot_capacity(SlotId::new(0, 0));
        let mut g = TaskGraph::new("two");
        let a = g.add_task(Task::compute("heavy1", slot_cap.scale(0.45)));
        let b = g.add_task(Task::compute("heavy2", slot_cap.scale(0.45)));
        let c = g.add_task(Task::compute("light", Resources::new(100, 200, 0, 0, 0)));
        g.add_fifo(Fifo::new("ab", a, b, 64));
        g.add_fifo(Fifo::new("bc", b, c, 64));
        let slots = vec![SlotId::new(0, 0), SlotId::new(0, 0), SlotId::new(1, 0)];
        let rep = analyze(
            &g,
            &[0, 0, 1],
            &slots,
            2,
            &device(),
            true,
            &[Resources::ZERO, Resources::ZERO],
            &TimingModel::default(),
        )
        .unwrap();
        assert!(rep.freq_mhz[0] < rep.freq_mhz[1]);
        assert_eq!(rep.freq_mhz[1], 300.0);
        assert_eq!(rep.design_freq_mhz(), rep.freq_mhz[0]);
    }
}
