//! Reporting helpers: the data behind the paper's tables and
//! resource-utilization figures.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use tapacs_fpga::{ResourceKind, Utilization};
use tapacs_ilp::{CacheStats, SolveActivity, SolveCache, SolveStats};

use crate::compiler::CompiledDesign;

/// Aggregated ILP activity at one bipartition recursion level.
///
/// Level 0 is the first (whole-cluster or whole-chip) split; each level
/// below halves the device range or slot region. The paper's scalability
/// argument is visible here: per-solve wall-clock shrinks as the recursion
/// descends, and sibling solves at the same level run concurrently under
/// the parallel backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelSolveStats {
    /// Recursion depth (0 = top split).
    pub level: usize,
    /// Two-way ILP solves performed at this depth.
    pub solves: usize,
    /// Summed solve wall-clock at this depth, in seconds. Under the
    /// parallel backend sibling solves overlap, so this exceeds the
    /// critical-path time.
    pub wall_s: f64,
}

/// Folds raw `(level, seconds)` samples into one row per level.
pub(crate) fn aggregate_level_samples(mut samples: Vec<(usize, f64)>) -> Vec<LevelSolveStats> {
    samples.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut rows: Vec<LevelSolveStats> = Vec::new();
    for (level, wall_s) in samples {
        match rows.last_mut() {
            Some(row) if row.level == level => {
                row.solves += 1;
                row.wall_s += wall_s;
            }
            _ => rows.push(LevelSolveStats { level, solves: 1, wall_s }),
        }
    }
    rows
}

/// Solver-side view of a compiled design: per-level ILP timings for both
/// floorplanning stages plus the process-wide solve-cache counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverActivityReport {
    /// Inter-FPGA partitioner (§4.3) solve timings per recursion level.
    pub partition_levels: Vec<LevelSolveStats>,
    /// Intra-FPGA floorplanner (§4.5) solve timings per recursion level.
    pub floorplan_levels: Vec<LevelSolveStats>,
    /// Memo-cache counters at report time (process-wide, not per-design).
    pub cache: CacheStats,
    /// LP-engine counters at report time (process-wide, not per-design):
    /// simplex iterations, warm-start hit rate, presolve reductions.
    pub simplex: SolveStats,
}

impl SolverActivityReport {
    /// Collects solver activity from a compiled design and the global
    /// solve cache / LP-engine counters.
    pub fn from_design(design: &CompiledDesign) -> Self {
        Self {
            partition_levels: design.partition.solve_stats.clone(),
            floorplan_levels: design.floorplan_stats.clone(),
            cache: SolveCache::global().stats(),
            simplex: SolveActivity::global().snapshot(),
        }
    }

    /// ASCII rendering: one row per (stage, level), then the cache and
    /// LP-engine lines.
    pub fn render_table(&self) -> String {
        let mut s = String::from("stage      level  solves  wall(s)\n");
        for (stage, rows) in
            [("partition", &self.partition_levels), ("floorplan", &self.floorplan_levels)]
        {
            for r in rows {
                let _ = writeln!(s, "{:<10} {:<6} {:<7} {:.3}", stage, r.level, r.solves, r.wall_s);
            }
        }
        let _ = writeln!(
            s,
            "solve cache: {} hits / {} misses ({:.0}% hit rate), {} entries",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.entries
        );
        let _ = writeln!(
            s,
            "LP engine: {} simplex iterations over {} solves ({:.1}/solve, {} in phase 1)",
            self.simplex.simplex_iterations,
            self.simplex.lp_solves,
            self.simplex.iterations_per_solve(),
            self.simplex.phase1_iterations,
        );
        let _ = writeln!(
            s,
            "warm starts: {}/{} hits ({:.0}% hit rate)",
            self.simplex.warm_hits,
            self.simplex.warm_attempts,
            self.simplex.warm_hit_rate() * 100.0,
        );
        let _ = writeln!(
            s,
            "basis LU: {} factorizations ({} fill-in nnz), {} eta updates ({} nnz), {} refactor triggers",
            self.simplex.lu_factorizations,
            self.simplex.lu_fill_nnz,
            self.simplex.eta_updates,
            self.simplex.eta_nnz,
            self.simplex.refactor_triggers,
        );
        let _ = writeln!(
            s,
            "search: {} B&B nodes, {} pricing switches, {} partial refreshes, {} memo sibling hits",
            self.simplex.bb_nodes,
            self.simplex.pricing_switches,
            self.simplex.partial_pricing_refreshes,
            self.simplex.memo_sibling_hits,
        );
        let _ = writeln!(
            s,
            "presolve: {} runs, {} rows removed, {} cols fixed, {} bounds tightened",
            self.simplex.presolve_runs,
            self.simplex.presolve_rows_removed,
            self.simplex.presolve_cols_fixed,
            self.simplex.presolve_bounds_tightened,
        );
        s
    }
}

/// One FPGA's row in a Figure 11/13/16-style utilization chart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Design label (`F1-T`, `F4-1`, …).
    pub label: String,
    /// Per-kind utilization.
    pub utilization: Utilization,
    /// HBM channels used over channels available, as a percentage.
    pub channels_pct: f64,
}

impl UtilizationReport {
    /// Extracts per-FPGA utilization rows from a compiled design.
    pub fn rows(design: &CompiledDesign, total_channels: usize) -> Vec<UtilizationReport> {
        let n = design.n_fpgas();
        (0..n)
            .map(|f| {
                let label = if n == 1 {
                    design.flow.label()
                } else {
                    format!("{}-{}", design.flow.label(), f + 1)
                };
                UtilizationReport {
                    label,
                    utilization: design.utilization[f],
                    channels_pct: if total_channels == 0 {
                        0.0
                    } else {
                        design.channels_used[f] as f64 * 100.0 / total_channels as f64
                    },
                }
            })
            .collect()
    }

    /// ASCII rendering of a utilization table (one row per FPGA).
    pub fn render_table(rows: &[UtilizationReport]) -> String {
        let mut s = String::new();
        s.push_str("design   BRAM%   DSP%    FF%     LUT%    URAM%   Channels%\n");
        for r in rows {
            s.push_str(&format!(
                "{:<8} {:<7.1} {:<7.1} {:<7.1} {:<7.1} {:<7.1} {:<7.1}\n",
                r.label,
                r.utilization.get(ResourceKind::Bram) * 100.0,
                r.utilization.get(ResourceKind::Dsp) * 100.0,
                r.utilization.get(ResourceKind::Ff) * 100.0,
                r.utilization.get(ResourceKind::Lut) * 100.0,
                r.utilization.get(ResourceKind::Uram) * 100.0,
                r.channels_pct,
            ));
        }
        s
    }
}

/// Frequency comparison across the three flows (the per-benchmark claims
/// in §5.2-§5.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequencySummary {
    /// Vitis HLS single-FPGA frequency (MHz).
    pub vitis_mhz: f64,
    /// TAPA single-FPGA frequency (MHz).
    pub tapa_mhz: f64,
    /// TAPA-CS multi-FPGA design frequency (MHz).
    pub tapacs_mhz: f64,
}

impl FrequencySummary {
    /// Percentage improvement of TAPA-CS over Vitis HLS.
    pub fn improvement_vs_vitis_pct(&self) -> f64 {
        (self.tapacs_mhz / self.vitis_mhz - 1.0) * 100.0
    }

    /// Percentage improvement of TAPA-CS over single-FPGA TAPA.
    pub fn improvement_vs_tapa_pct(&self) -> f64 {
        (self.tapacs_mhz / self.tapa_mhz - 1.0) * 100.0
    }
}

/// One row of Table 1 (comparison with prior scale-out approaches).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriorWorkRow {
    /// Approach name.
    pub method: &'static str,
    /// Supports an HLS front-end.
    pub hls: bool,
    /// Uses Ethernet networking.
    pub ethernet: bool,
    /// Couples floorplanning with compilation.
    pub floorplanning: bool,
    /// Pipelines the interconnect.
    pub interconnect_pipelining: bool,
    /// Aware of the cluster topology.
    pub topology_aware: bool,
    /// Partitions automatically.
    pub automatic_partitioning: bool,
    /// Executes on real hardware (vs simulation).
    pub hardware_execution: bool,
    /// Generalizes beyond one workload family.
    pub generalizable: bool,
    /// Reported Fmax in MHz (`None` where the paper lists none).
    pub fmax_mhz: Option<f64>,
}

/// Table 1 of the paper.
pub fn prior_work() -> Vec<PriorWorkRow> {
    vec![
        PriorWorkRow {
            method: "FPGA'12 (latency-insensitive)",
            hls: false,
            ethernet: false,
            floorplanning: false,
            interconnect_pipelining: false,
            topology_aware: false,
            automatic_partitioning: false,
            hardware_execution: false,
            generalizable: true,
            fmax_mhz: Some(85.0),
        },
        PriorWorkRow {
            method: "Simulation-based",
            hls: false,
            ethernet: false,
            floorplanning: false,
            interconnect_pipelining: false,
            topology_aware: false,
            automatic_partitioning: false,
            hardware_execution: false,
            generalizable: true,
            fmax_mhz: None,
        },
        PriorWorkRow {
            method: "Virtualization-based",
            hls: true,
            ethernet: false,
            floorplanning: false,
            interconnect_pipelining: false,
            topology_aware: false,
            automatic_partitioning: true,
            hardware_execution: true,
            generalizable: true,
            fmax_mhz: Some(300.0), // 100-300 band; upper end
        },
        PriorWorkRow {
            method: "CNN/DNN-specific",
            hls: true,
            ethernet: true,
            floorplanning: false,
            interconnect_pipelining: false,
            topology_aware: false,
            automatic_partitioning: true,
            hardware_execution: true,
            generalizable: false,
            fmax_mhz: Some(240.0),
        },
        PriorWorkRow {
            method: "TAPA-CS (Ours)",
            hls: true,
            ethernet: true,
            floorplanning: true,
            interconnect_pipelining: true,
            topology_aware: true,
            automatic_partitioning: true,
            hardware_execution: true,
            generalizable: true,
            fmax_mhz: Some(300.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_improvements() {
        let f = FrequencySummary { vitis_mhz: 123.0, tapa_mhz: 190.0, tapacs_mhz: 266.0 };
        // The paper's PageRank: 116% over Vitis, 40% over TAPA.
        assert!((f.improvement_vs_vitis_pct() - 116.26).abs() < 0.5);
        assert!((f.improvement_vs_tapa_pct() - 40.0).abs() < 0.1);
    }

    #[test]
    fn table1_only_ours_checks_every_box() {
        let rows = prior_work();
        let ours = rows.last().unwrap();
        assert!(ours.hls && ours.ethernet && ours.floorplanning);
        assert!(ours.interconnect_pipelining && ours.topology_aware);
        assert!(ours.automatic_partitioning && ours.hardware_execution && ours.generalizable);
        for r in &rows[..rows.len() - 1] {
            let all = r.hls
                && r.ethernet
                && r.floorplanning
                && r.interconnect_pipelining
                && r.topology_aware
                && r.automatic_partitioning
                && r.hardware_execution
                && r.generalizable;
            assert!(!all, "{} should not check every box", r.method);
        }
    }

    #[test]
    fn level_samples_aggregate_in_order() {
        let rows = aggregate_level_samples(vec![(1, 0.25), (0, 1.0), (1, 0.75), (2, 0.5)]);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].level, rows[0].solves), (0, 1));
        assert_eq!((rows[1].level, rows[1].solves), (1, 2));
        assert!((rows[1].wall_s - 1.0).abs() < 1e-12);
        assert_eq!((rows[2].level, rows[2].solves), (2, 1));
    }

    #[test]
    fn solver_report_renders_levels_cache_and_engine() {
        let report = SolverActivityReport {
            partition_levels: vec![LevelSolveStats { level: 0, solves: 1, wall_s: 0.125 }],
            floorplan_levels: vec![LevelSolveStats { level: 1, solves: 4, wall_s: 0.5 }],
            cache: CacheStats { hits: 3, misses: 1, entries: 1, ..CacheStats::default() },
            simplex: SolveStats {
                lp_solves: 10,
                simplex_iterations: 55,
                phase1_iterations: 5,
                warm_attempts: 8,
                warm_hits: 6,
                presolve_runs: 2,
                presolve_rows_removed: 4,
                presolve_cols_fixed: 1,
                presolve_bounds_tightened: 3,
                lu_factorizations: 12,
                lu_fill_nnz: 90,
                eta_updates: 30,
                eta_nnz: 120,
                refactor_triggers: 1,
                refactor_fill_triggers: 0,
                ft_replacements: 7,
                devex_resets: 0,
                pricing_switches: 2,
                partial_pricing_refreshes: 9,
                memo_sibling_hits: 5,
                bb_nodes: 21,
            },
        };
        let table = report.render_table();
        assert!(table.contains("partition"));
        assert!(table.contains("floorplan"));
        assert!(table.contains("3 hits / 1 misses (75% hit rate)"), "{table}");
        assert!(table.contains("55 simplex iterations over 10 solves"), "{table}");
        assert!(table.contains("6/8 hits (75% hit rate)"), "{table}");
        assert!(table.contains("4 rows removed"), "{table}");
        assert!(table.contains("12 factorizations (90 fill-in nnz)"), "{table}");
        assert!(table.contains("30 eta updates (120 nnz), 1 refactor triggers"), "{table}");
        assert!(
            table.contains(
                "21 B&B nodes, 2 pricing switches, 9 partial refreshes, 5 memo sibling hits"
            ),
            "{table}"
        );
    }

    #[test]
    fn table_renders() {
        let rows = vec![UtilizationReport {
            label: "F1-T".into(),
            utilization: Utilization { lut: 0.5, ff: 0.4, bram: 0.3, dsp: 0.2, uram: 0.1 },
            channels_pct: 84.0,
        }];
        let t = UtilizationReport::render_table(&rows);
        assert!(t.contains("F1-T"));
        assert!(t.contains("50.0"));
    }
}
