//! Step 3 — inter-FPGA floorplanning (§4.3).
//!
//! Assigns every task to an FPGA so that the topology-aware communication
//! cost `Σ e.width × dist(F_i, F_j) × λ` (equation 2) is minimized while
//! every FPGA stays below the per-resource utilization threshold `T`
//! (equation 1).
//!
//! Exactly as the paper notes, the partitioner "does not always recommend
//! the min-cut": a module is moved off-chip when keeping it local would
//! congest a device past `T`, because congestion costs frequency.
//!
//! The solve strategy is multilevel, the standard industrial approach for
//! ILP-based partitioners at this scale:
//!
//! 1. **coarsen** by heavy-edge matching until at most
//!    [`PartitionConfig::coarsen_to`] supernodes remain (the 493-module CNN
//!    grid shrinks to under a hundred),
//! 2. **recursive two-way ILP bisection** over device index ranges using
//!    the pluggable [`tapacs_ilp`] solver backends (cut width linearized
//!    with one continuous variable per edge). Bipartitioning makes the two
//!    halves of every level *independent*, so under
//!    [`SolverOptions::parallel_recursion`] they are solved concurrently on
//!    scoped threads — the paper's divide-and-conquer scalability argument,
//!    applied to compile time,
//! 3. **project & refine** on the full graph: Kernighan–Lin-style single
//!    task moves evaluated against the *true* topology distance and λ.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tapacs_fpga::Resources;
use tapacs_graph::{algo, TaskGraph, TaskId};
use tapacs_ilp::{IlpError, LinExpr, Model, Sense, SolverConfig, SolverOptions};
use tapacs_net::{AlveoLink, Cluster, FpgaId};

use crate::error::CompileError;
use crate::report::{aggregate_level_samples, LevelSolveStats};

/// Tuning knobs for the inter-FPGA partitioner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Per-resource utilization threshold `T` of equation (1).
    pub threshold: f64,
    /// ILP wall-clock budget per bisection level.
    pub time_limit_s: f64,
    /// Coarsening target: maximum supernodes handed to the ILP.
    pub coarsen_to: usize,
    /// Refinement sweeps over the full graph.
    pub refine_passes: usize,
    /// Compute-load balance slack: each device group must carry at least
    /// `(1 - slack) × fair_share` of the binding resource ("ensuring the
    /// compute-load between the multiple FPGAs is balanced", §4.1).
    pub balance_slack: f64,
    /// Solver backend, worker-thread count and caching for the bisection
    /// ILPs (also gates the concurrent recursion over the two halves).
    pub solver: SolverOptions,
    /// Job-level cancellation token threaded into every bisection solve.
    /// The batch engine installs one per [`crate::batch::CompileJob`]
    /// budget; a tripped deadline feeds the degradation ladder (greedy
    /// fallback, result marked degraded) rather than erroring. Token
    /// identity is deliberately excluded from the solve-cache key, so a
    /// budget-truncated run's *completed* solves replay as hits when the
    /// point is resumed at a higher budget.
    #[serde(skip)]
    pub cancel: Option<tapacs_ilp::CancellationToken>,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            threshold: 0.7,
            time_limit_s: 10.0,
            coarsen_to: 96,
            refine_passes: 4,
            balance_slack: 0.35,
            solver: SolverOptions::default(),
            cancel: None,
        }
    }
}

/// Result of inter-FPGA floorplanning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterPartition {
    /// FPGA index per task.
    pub assignment: Vec<usize>,
    /// Equation-2 communication cost under the cluster's topology and λ.
    pub comm_cost: f64,
    /// Total FIFO bit-width crossing FPGA boundaries.
    pub cut_width_bits: u64,
    /// Resources used per FPGA.
    pub used: Vec<Resources>,
    /// Wall-clock spent in this step (the paper's `L1` overhead, §5.6).
    pub runtime: Duration,
    /// Two-way ILP activity per bisection level (empty when the greedy
    /// fallback produced the assignment).
    pub solve_stats: Vec<LevelSolveStats>,
    /// `true` when some bisection ILP timed out and the degradation ladder
    /// substituted a heuristic incumbent: the partition is feasible but
    /// not the solver's proven-or-best answer.
    #[serde(default)]
    pub degraded: bool,
}

/// Resources available for user logic per FPGA once the static platform
/// region and (for multi-FPGA designs) the AlveoLink networking IP are
/// reserved.
pub fn usable_capacity(cluster: &Cluster, n_fpgas: usize) -> Resources {
    let device = cluster.device();
    let mut cap = device.usable_resources();
    if n_fpgas > 1 {
        let ports = device.qsfp_ports().min(2);
        cap = cap.saturating_sub(&AlveoLink::resource_overhead_for(device, ports));
    }
    cap
}

/// Partitions `graph` across the first `n_fpgas` devices of `cluster`.
///
/// # Errors
///
/// * [`CompileError::InsufficientResources`] if no feasible assignment
///   exists under the threshold,
/// * [`CompileError::Solver`] if the ILP found no incumbent in budget.
pub fn partition(
    graph: &TaskGraph,
    cluster: &Cluster,
    n_fpgas: usize,
    cfg: &PartitionConfig,
) -> Result<InterPartition, CompileError> {
    // The FPGA count is job input (batch sweeps feed arbitrary flows), so
    // an invalid count is a per-job error, never a panic.
    if n_fpgas < 1 || n_fpgas > cluster.total_fpgas() {
        return Err(CompileError::ClusterTooSmall {
            needed: n_fpgas,
            available: cluster.total_fpgas(),
        });
    }
    let start = Instant::now();
    graph.validate()?;

    let cap = usable_capacity(cluster, n_fpgas);
    let total = graph.total_resources();

    if n_fpgas == 1 {
        if !total.fits_within(&cap, cfg.threshold) {
            return Err(CompileError::InsufficientResources {
                detail: format!(
                    "design needs {total}, exceeds {:.0}% of one device ({cap})",
                    cfg.threshold * 100.0
                ),
            });
        }
        return Ok(finish(graph, cluster, vec![0; graph.num_tasks()], 1, start, Vec::new(), false));
    }

    // Aggregate feasibility first: fail fast with a useful message.
    if !total.fits_within(&(cap * n_fpgas as u64), cfg.threshold) {
        return Err(CompileError::InsufficientResources {
            detail: format!(
                "design needs {total}, exceeds {:.0}% of {n_fpgas} devices",
                cfg.threshold * 100.0
            ),
        });
    }

    // --- 1. Coarsen -------------------------------------------------------
    let coarse = Coarse::build(graph, cfg.coarsen_to, &cap, cfg.threshold);

    // --- 2. Recursive bisection over the device range ----------------------
    // Loose balance gives the ILP freedom, but a lopsided upper-level split
    // can be un-splittable further down (bin-packing), so retry with
    // progressively tighter balance before falling back to a greedy
    // multiway packing.
    let mut assignment = vec![0usize; graph.num_tasks()];
    let mut solved = false;
    let mut solve_stats = Vec::new();
    let mut degraded = false;
    for slack in [cfg.balance_slack, cfg.balance_slack * 0.4, 0.05] {
        let tighter = PartitionConfig { balance_slack: slack, ..cfg.clone() };
        let all: Vec<usize> = (0..coarse.nodes.len()).collect();
        let samples = Mutex::new(Vec::new());
        // Fresh flag per attempt: a degraded *failed* attempt must not
        // taint a clean later one.
        let attempt_degraded = AtomicBool::new(false);
        match bisect(&coarse, &all, 0..n_fpgas, &cap, &tighter, 0, &samples, &attempt_degraded) {
            Ok(pairs) => {
                let mut coarse_assign = vec![0usize; coarse.nodes.len()];
                for (sn, device) in pairs {
                    coarse_assign[sn] = device;
                }
                for (sn, tasks) in coarse.members.iter().enumerate() {
                    for &t in tasks {
                        assignment[t.index()] = coarse_assign[sn];
                    }
                }
                let samples = samples.into_inner().unwrap_or_else(|e| e.into_inner());
                solve_stats = aggregate_level_samples(samples);
                degraded = attempt_degraded.load(Ordering::Relaxed);
                solved = true;
                break;
            }
            Err(CompileError::InsufficientResources { .. }) => continue,
            Err(other) => return Err(other),
        }
    }
    if !solved {
        assignment = greedy_multiway(graph, n_fpgas, &cap, cfg.threshold)?;
    }
    refine(graph, cluster, n_fpgas, &cap, cfg, &mut assignment);

    // Final feasibility repair + check.
    repair(graph, n_fpgas, &cap, cfg.threshold, &mut assignment)?;

    Ok(finish(graph, cluster, assignment, n_fpgas, start, solve_stats, degraded))
}

fn finish(
    graph: &TaskGraph,
    cluster: &Cluster,
    assignment: Vec<usize>,
    n_fpgas: usize,
    start: Instant,
    solve_stats: Vec<LevelSolveStats>,
    degraded: bool,
) -> InterPartition {
    let mut used = vec![Resources::ZERO; n_fpgas];
    for (id, t) in graph.tasks() {
        used[assignment[id.index()]] += t.resources;
    }
    InterPartition {
        comm_cost: comm_cost(graph, cluster, &assignment),
        cut_width_bits: algo::cut_width_bits(graph, &assignment),
        used,
        runtime: start.elapsed(),
        assignment,
        solve_stats,
        degraded,
    }
}

/// Equation (2): `Σ e.width × dist(F_i, F_j) × λ` (λ folded into
/// [`Cluster::dist`]).
pub fn comm_cost(graph: &TaskGraph, cluster: &Cluster, assignment: &[usize]) -> f64 {
    graph
        .fifos()
        .map(|(_, f)| {
            let (a, b) = (assignment[f.src.index()], assignment[f.dst.index()]);
            f.width_bits as f64 * cluster.dist(FpgaId(a), FpgaId(b))
        })
        .sum()
}

// --------------------------------------------------------------------------
// Coarsening
// --------------------------------------------------------------------------

struct Coarse {
    /// Supernode resource sums.
    nodes: Vec<Resources>,
    /// Tasks merged into each supernode.
    members: Vec<Vec<TaskId>>,
    /// Coarse edges: (a, b, summed width).
    edges: Vec<(usize, usize, u64)>,
}

impl Coarse {
    fn build(graph: &TaskGraph, target: usize, cap: &Resources, threshold: f64) -> Coarse {
        // Start with one supernode per task.
        let n = graph.num_tasks();
        let mut owner: Vec<usize> = (0..n).collect();
        let mut count = n;

        // Edge list sorted by width, heaviest first.
        let mut edge_list: Vec<(usize, usize, u64)> = graph
            .fifos()
            .map(|(_, f)| (f.src.index(), f.dst.index(), f.width_bits as u64))
            .collect();
        edge_list.sort_by_key(|e| std::cmp::Reverse(e.2));

        // Union-find over tasks.
        fn find(owner: &mut [usize], mut x: usize) -> usize {
            while owner[x] != x {
                owner[x] = owner[owner[x]];
                x = owner[x];
            }
            x
        }

        let mut group_res: Vec<Resources> = graph.tasks().map(|(_, t)| t.resources).collect();
        // Half the per-device budget: merged nodes must stay easily placeable.
        let limit = cap.scale(threshold * 0.5);

        let mut rounds = 0;
        while count > target && rounds < 64 {
            rounds += 1;
            let mut merged_any = false;
            for &(a, b, _) in &edge_list {
                if count <= target {
                    break;
                }
                let (ra, rb) = (find(&mut owner, a), find(&mut owner, b));
                if ra == rb {
                    continue;
                }
                let combined = group_res[ra] + group_res[rb];
                if !combined.fits_within(&limit, 1.0) {
                    continue;
                }
                owner[rb] = ra;
                group_res[ra] = combined;
                count -= 1;
                merged_any = true;
            }
            if !merged_any {
                break;
            }
        }

        // Compact to dense supernode ids.
        let mut dense: Vec<usize> = vec![usize::MAX; n];
        let mut nodes = Vec::new();
        let mut members: Vec<Vec<TaskId>> = Vec::new();
        for t in 0..n {
            let r = find(&mut owner, t);
            if dense[r] == usize::MAX {
                dense[r] = nodes.len();
                nodes.push(Resources::ZERO);
                members.push(Vec::new());
            }
            let d = dense[r];
            nodes[d] += graph.task(TaskId::from_index(t)).resources;
            members[d].push(TaskId::from_index(t));
        }

        // Merge parallel coarse edges.
        let mut edge_map: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        for (_, f) in graph.fifos() {
            let a = dense[find(&mut owner, f.src.index())];
            let b = dense[find(&mut owner, f.dst.index())];
            if a != b {
                let key = (a.min(b), a.max(b));
                *edge_map.entry(key).or_insert(0) += f.width_bits as u64;
            }
        }
        let mut edges: Vec<(usize, usize, u64)> =
            edge_map.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        edges.sort_unstable();
        Coarse { nodes, members, edges }
    }
}

// --------------------------------------------------------------------------
// ILP bisection
// --------------------------------------------------------------------------

/// Recursively splits the supernodes in `here` across the device range with
/// a two-way ILP per level, until every group is a single device. Returns
/// `(supernode, device)` pairs.
///
/// The two halves of each split are independent subproblems; under
/// [`SolverOptions::parallel_recursion`] the left half runs on a scoped
/// worker thread while this thread descends into the right half. Merging is
/// a deterministic concatenation, so the result is identical to the
/// sequential recursion.
#[allow(clippy::too_many_arguments)]
fn bisect(
    coarse: &Coarse,
    here: &[usize],
    range: std::ops::Range<usize>,
    cap: &Resources,
    cfg: &PartitionConfig,
    level: usize,
    samples: &Mutex<Vec<(usize, f64)>>,
    degraded: &AtomicBool,
) -> Result<Vec<(usize, usize)>, CompileError> {
    let len = range.len();
    if len <= 1 || here.is_empty() {
        return Ok(here.iter().map(|&sn| (sn, range.start)).collect());
    }
    let mid = range.start + len / 2;
    let left = range.start..mid;
    let right = mid..range.end;

    let t0 = Instant::now();
    let side = solve_two_way(coarse, here, left.len(), right.len(), cap, cfg, degraded)?;
    samples.lock().unwrap_or_else(|e| e.into_inner()).push((level, t0.elapsed().as_secs_f64()));

    let mut left_sns = Vec::new();
    let mut right_sns = Vec::new();
    for (&sn, &s) in here.iter().zip(&side) {
        if s {
            right_sns.push(sn);
        } else {
            left_sns.push(sn);
        }
    }

    let concurrent = cfg.solver.parallel_recursion()
        && left.len() > 1
        && right.len() > 1
        && !left_sns.is_empty()
        && !right_sns.is_empty();
    let (left_pairs, right_pairs) = if concurrent {
        // Per-job solve-activity scopes are thread-local; re-install the
        // caller's scope on the worker so batch attribution stays correct.
        let scope = tapacs_ilp::SolveActivity::current_scope();
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                tapacs_ilp::SolveActivity::scoped_opt(scope, || {
                    bisect(coarse, &left_sns, left.clone(), cap, cfg, level + 1, samples, degraded)
                })
            });
            let right_pairs =
                bisect(coarse, &right_sns, right, cap, cfg, level + 1, samples, degraded);
            // Re-raise a worker panic with its original payload so the
            // batch engine's job-level isolation can attribute it.
            let left_pairs = match worker.join() {
                Ok(pairs) => pairs,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (left_pairs, right_pairs)
        })
    } else {
        (
            bisect(coarse, &left_sns, left, cap, cfg, level + 1, samples, degraded),
            bisect(coarse, &right_sns, right, cap, cfg, level + 1, samples, degraded),
        )
    };
    let mut pairs = left_pairs?;
    pairs.extend(right_pairs?);
    Ok(pairs)
}

/// Two-way ILP: returns `true` for supernodes on the right side.
fn solve_two_way(
    coarse: &Coarse,
    here: &[usize],
    left_devices: usize,
    right_devices: usize,
    cap: &Resources,
    cfg: &PartitionConfig,
    degraded: &AtomicBool,
) -> Result<Vec<bool>, CompileError> {
    let mut m = Model::new("inter-fpga-bisection");
    let mut local = vec![usize::MAX; coarse.nodes.len()];
    let mut x = Vec::with_capacity(here.len());
    for (i, &sn) in here.iter().enumerate() {
        local[sn] = i;
        x.push(m.binary(format!("x{sn}")));
    }

    // Cut indicators for edges inside this group. As in the floorplanner's
    // split, integral assignments force every indicator to 0 or 1, so
    // feasible objectives live on the lattice of the edge-weight gcd.
    let mut objective = LinExpr::new();
    let mut weight_gcd: u64 = 0;
    for &(a, b, w) in &coarse.edges {
        let (la, lb) = (local[a], local[b]);
        if la == usize::MAX || lb == usize::MAX {
            continue;
        }
        let y = m.continuous(format!("y{a}_{b}"), 0.0, 1.0);
        m.add_ge(format!("c1_{a}_{b}"), LinExpr::term(y, 1.0) - x[la] + x[lb], 0.0);
        m.add_ge(format!("c2_{a}_{b}"), LinExpr::term(y, 1.0) - x[lb] + x[la], 0.0);
        objective.add_term(y, w as f64);
        weight_gcd = gcd(weight_gcd, w);
    }

    // Resource thresholds per side, per kind (equation 1).
    use tapacs_fpga::ResourceKind;
    for kind in ResourceKind::ALL {
        let total: f64 = here.iter().map(|&sn| coarse.nodes[sn].get(kind) as f64).sum();
        let cap_one = cap.get(kind) as f64 * cfg.threshold;
        let right_cap = cap_one * right_devices as f64;
        let left_cap = cap_one * left_devices as f64;
        let load_right = LinExpr::sum(
            here.iter()
                .enumerate()
                .map(|(i, &sn)| LinExpr::term(x[i], coarse.nodes[sn].get(kind) as f64)),
        );
        m.add_le(format!("capR_{kind}"), load_right.clone(), right_cap);
        // Left load = total - right load ≤ left_cap.
        m.add_ge(format!("capL_{kind}"), load_right, total - left_cap);
    }

    // Compute-load balance on the binding resource kind: without this, a
    // small design would trivially collapse onto one device (min-cut = 0),
    // defeating the paper's load-balancing objective.
    if let Some(kind) = binding_kind(coarse, here, cap) {
        let total: f64 = here.iter().map(|&sn| coarse.nodes[sn].get(kind) as f64).sum();
        let devices = (left_devices + right_devices) as f64;
        let right_share = right_devices as f64 / devices;
        let left_share = left_devices as f64 / devices;
        let load_right = LinExpr::sum(
            here.iter()
                .enumerate()
                .map(|(i, &sn)| LinExpr::term(x[i], coarse.nodes[sn].get(kind) as f64)),
        );
        let floor_r = total * right_share * (1.0 - cfg.balance_slack);
        let floor_l = total * left_share * (1.0 - cfg.balance_slack);
        m.add_ge("balR", load_right.clone(), floor_r);
        // Left load ≥ floor_l  ⇔  right load ≤ total − floor_l.
        m.add_le("balL", load_right, total - floor_l);
    }

    m.set_objective(Sense::Minimize, objective);
    let mut solver_cfg = SolverConfig::with_time_limit(Duration::from_secs_f64(cfg.time_limit_s));
    solver_cfg.objective_granularity = weight_gcd as f64;
    solver_cfg.cancel = cfg.cancel.clone();
    match m.solve_with_options(&solver_cfg, &cfg.solver) {
        Ok(sol) => {
            // The degradation ladder turns a timed-out ILP into a heuristic
            // incumbent marked `degraded`; propagate the mark so the
            // partition (and ultimately the DSE point) is not mistaken for
            // a proven result.
            if sol.degraded {
                degraded.store(true, Ordering::Relaxed);
            }
            Ok(x.iter().map(|&v| sol.is_set(v)).collect())
        }
        Err(err @ (IlpError::Infeasible | IlpError::NoIncumbent)) => {
            // Best-effort greedy split before declaring the level
            // unsolvable. A proven-infeasible ILP reaches this arm on the
            // organic path (deterministic whatever the budget), but an
            // exhausted budget (`NoIncumbent` past the heuristic rung)
            // means the greedy stand-in replaces an answer the ILP would
            // otherwise have produced — that substitution must carry the
            // degraded mark like any other ladder fallback.
            if matches!(err, IlpError::NoIncumbent) {
                degraded.store(true, Ordering::Relaxed);
            }
            let weights: Vec<Resources> = here.iter().map(|&sn| coarse.nodes[sn]).collect();
            greedy_two_way(&weights, cap, left_devices, right_devices, cfg.threshold).ok_or(
                CompileError::InsufficientResources {
                    detail: "no two-way split satisfies the resource thresholds".into(),
                },
            )
        }
        Err(e) => Err(CompileError::Solver(e.to_string())),
    }
}

/// Euclidean gcd with `gcd(0, x) = x`, so it folds cleanly over a weight
/// list starting from zero (an empty list yields 0 = "no lattice known").
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Largest-first greedy two-way split; returns `None` when some item fits
/// neither side. `true` = right side.
fn greedy_two_way(
    weights: &[Resources],
    cap: &Resources,
    left_devices: usize,
    right_devices: usize,
    threshold: f64,
) -> Option<Vec<bool>> {
    let cap_left = (*cap * left_devices as u64).scale(threshold);
    let cap_right = (*cap * right_devices as u64).scale(threshold);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| {
        let r = weights[i];
        std::cmp::Reverse(r.lut + r.ff + 1000 * (r.bram + r.dsp + r.uram))
    });
    let mut used_left = Resources::ZERO;
    let mut used_right = Resources::ZERO;
    let mut side = vec![false; weights.len()];
    for i in order {
        let w = weights[i];
        let fits_l = (used_left + w).fits_within(&cap_left, 1.0);
        let fits_r = (used_right + w).fits_within(&cap_right, 1.0);
        let frac_l = used_left.utilization(&cap_left).max();
        let frac_r = used_right.utilization(&cap_right).max();
        match (fits_l, fits_r) {
            (true, true) => {
                if frac_r < frac_l {
                    side[i] = true;
                    used_right += w;
                } else {
                    used_left += w;
                }
            }
            (true, false) => used_left += w,
            (false, true) => {
                side[i] = true;
                used_right += w;
            }
            (false, false) => return None,
        }
    }
    Some(side)
}

/// Greedy multiway packing fallback: largest-first onto the least-loaded
/// feasible device. Ignores communication cost (refinement recovers it).
fn greedy_multiway(
    graph: &TaskGraph,
    n_fpgas: usize,
    cap: &Resources,
    threshold: f64,
) -> Result<Vec<usize>, CompileError> {
    let mut order: Vec<TaskId> = graph.task_ids().collect();
    order.sort_by_key(|t| {
        let r = graph.task(*t).resources;
        std::cmp::Reverse(r.lut + r.ff + 1000 * (r.bram + r.dsp + r.uram))
    });
    let mut used = vec![Resources::ZERO; n_fpgas];
    let mut assignment = vec![0usize; graph.num_tasks()];
    for t in order {
        let res = graph.task(t).resources;
        let mut best: Option<usize> = None;
        let mut best_load = f64::INFINITY;
        for f in 0..n_fpgas {
            if !(used[f] + res).fits_within(cap, threshold) {
                continue;
            }
            let load = used[f].utilization(cap).max();
            if load < best_load {
                best_load = load;
                best = Some(f);
            }
        }
        let Some(f) = best else {
            return Err(CompileError::InsufficientResources {
                detail: format!("task {} fits no device in greedy packing", graph.task(t).name),
            });
        };
        used[f] += res;
        assignment[t.index()] = f;
    }
    Ok(assignment)
}

/// The resource kind that binds first: `argmax_k total_k / cap_k`.
fn binding_kind(
    coarse: &Coarse,
    here: &[usize],
    cap: &Resources,
) -> Option<tapacs_fpga::ResourceKind> {
    use tapacs_fpga::ResourceKind;
    let mut best = None;
    let mut best_ratio = 0.0;
    for kind in ResourceKind::ALL {
        let capacity = cap.get(kind) as f64;
        if capacity <= 0.0 {
            continue;
        }
        let total: f64 = here.iter().map(|&sn| coarse.nodes[sn].get(kind) as f64).sum();
        let ratio = total / capacity;
        if total > 0.0 && ratio > best_ratio {
            best_ratio = ratio;
            best = Some(kind);
        }
    }
    best
}

// --------------------------------------------------------------------------
// Refinement & repair
// --------------------------------------------------------------------------

/// KL-style refinement: single-task moves accepted when they reduce the
/// true (topology + λ) communication cost and stay feasible.
fn refine(
    graph: &TaskGraph,
    cluster: &Cluster,
    n_fpgas: usize,
    cap: &Resources,
    cfg: &PartitionConfig,
    assignment: &mut [usize],
) {
    let mut used = vec![Resources::ZERO; n_fpgas];
    for (id, t) in graph.tasks() {
        used[assignment[id.index()]] += t.resources;
    }
    // Balance floor on the full graph's binding kind: moves must not
    // strip a device below its fair share.
    use tapacs_fpga::ResourceKind;
    let binding = ResourceKind::ALL.into_iter().filter(|k| cap.get(*k) > 0).max_by(|a, b| {
        let ta: u64 = graph.tasks().map(|(_, t)| t.resources.get(*a)).sum();
        let tb: u64 = graph.tasks().map(|(_, t)| t.resources.get(*b)).sum();
        let ra = ta as f64 / cap.get(*a) as f64;
        let rb = tb as f64 / cap.get(*b) as f64;
        // total_cmp: ratios are finite here, but a NaN from degenerate
        // job input must not panic a batch worker.
        ra.total_cmp(&rb)
    });
    let floor = binding.map(|k| {
        let total: u64 = graph.tasks().map(|(_, t)| t.resources.get(k)).sum();
        (k, total as f64 / n_fpgas as f64 * (1.0 - cfg.balance_slack))
    });

    for _ in 0..cfg.refine_passes {
        let mut improved = false;
        for (id, task) in graph.tasks() {
            let cur = assignment[id.index()];
            if let Some((k, f)) = floor {
                let after = used[cur].get(k).saturating_sub(task.resources.get(k));
                if task.resources.get(k) > 0 && (after as f64) < f {
                    continue; // move would unbalance the source device
                }
            }
            let mut best = cur;
            let mut best_delta = -1e-9;
            for cand in 0..n_fpgas {
                if cand == cur {
                    continue;
                }
                if !(used[cand] + task.resources).fits_within(cap, cfg.threshold) {
                    continue;
                }
                let delta = move_delta(graph, cluster, assignment, id, cand);
                if delta < best_delta {
                    best_delta = delta;
                    best = cand;
                }
            }
            if best != cur {
                used[cur] -= task.resources;
                used[best] += task.resources;
                assignment[id.index()] = best;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Change in equation-2 cost if `task` moves to FPGA `to`.
fn move_delta(
    graph: &TaskGraph,
    cluster: &Cluster,
    assignment: &[usize],
    task: TaskId,
    to: usize,
) -> f64 {
    let from = assignment[task.index()];
    let mut delta = 0.0;
    for &f in graph.out_fifos(task).iter().chain(graph.in_fifos(task)) {
        let fifo = graph.fifo(f);
        let other = if fifo.src == task { fifo.dst } else { fifo.src };
        if other == task {
            continue; // self-loop never crosses
        }
        let o = assignment[other.index()];
        let w = fifo.width_bits as f64;
        delta += w * (cluster.dist(FpgaId(to), FpgaId(o)) - cluster.dist(FpgaId(from), FpgaId(o)));
    }
    delta
}

/// Greedy repair of threshold violations (can occur when projection from
/// the coarse level unbalances a side).
fn repair(
    graph: &TaskGraph,
    n_fpgas: usize,
    cap: &Resources,
    threshold: f64,
    assignment: &mut [usize],
) -> Result<(), CompileError> {
    let mut used = vec![Resources::ZERO; n_fpgas];
    for (id, t) in graph.tasks() {
        used[assignment[id.index()]] += t.resources;
    }
    for _ in 0..graph.num_tasks() {
        let Some(over) = (0..n_fpgas).find(|&f| !used[f].fits_within(cap, threshold)) else {
            return Ok(());
        };
        // Move the largest task off the overloaded device to the least
        // loaded feasible one.
        let mut candidates: Vec<TaskId> =
            graph.task_ids().filter(|t| assignment[t.index()] == over).collect();
        candidates.sort_by_key(|t| std::cmp::Reverse(graph.task(*t).resources.lut));
        let mut moved = false;
        'outer: for t in candidates {
            let res = graph.task(t).resources;
            let mut order: Vec<usize> = (0..n_fpgas).filter(|&f| f != over).collect();
            order.sort_by(|&a, &b| {
                used[a].utilization(cap).max().total_cmp(&used[b].utilization(cap).max())
            });
            for f in order {
                if (used[f] + res).fits_within(cap, threshold) {
                    used[over] -= res;
                    used[f] += res;
                    assignment[t.index()] = f;
                    moved = true;
                    break 'outer;
                }
            }
        }
        if !moved {
            return Err(CompileError::InsufficientResources {
                detail: format!("FPGA {over} exceeds the threshold and no task can move"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_fpga::Device;
    use tapacs_graph::{Fifo, Task};
    use tapacs_net::Topology;

    fn cluster(n: usize) -> Cluster {
        Cluster::single_node(Device::u55c(), n, Topology::Ring)
    }

    /// Two tight communities joined by one thin edge.
    fn two_communities(per_side: usize) -> TaskGraph {
        let mut g = TaskGraph::new("communities");
        let r = Resources::new(40_000, 80_000, 50, 100, 10);
        let mut ids = Vec::new();
        for i in 0..2 * per_side {
            ids.push(g.add_task(Task::compute(format!("t{i}"), r)));
        }
        for side in 0..2 {
            let base = side * per_side;
            for i in 0..per_side - 1 {
                g.add_fifo(Fifo::new(
                    format!("e{side}_{i}"),
                    ids[base + i],
                    ids[base + i + 1],
                    512,
                ));
            }
        }
        // Thin bridge.
        g.add_fifo(Fifo::new("bridge", ids[per_side - 1], ids[per_side], 32));
        g
    }

    #[test]
    fn single_fpga_passthrough() {
        let g = two_communities(3);
        let p = partition(&g, &cluster(1), 1, &PartitionConfig::default()).unwrap();
        assert!(p.assignment.iter().all(|&f| f == 0));
        assert_eq!(p.cut_width_bits, 0);
        assert_eq!(p.comm_cost, 0.0);
    }

    #[test]
    fn two_fpgas_cut_the_thin_bridge() {
        let g = two_communities(6);
        let p = partition(&g, &cluster(2), 2, &PartitionConfig::default()).unwrap();
        // The optimal cut severs only the 32-bit bridge.
        assert_eq!(p.cut_width_bits, 32, "assignment: {:?}", p.assignment);
        // Both sides used.
        assert!(p.used.iter().all(|u| !u.is_zero()));
    }

    #[test]
    fn threshold_violation_detected_on_one_fpga() {
        let mut g = TaskGraph::new("huge");
        // One task consuming nearly the full device: fits at T=1.0 but not 0.7.
        let big = Device::u55c().resources().scale(0.9);
        g.add_task(Task::compute("big", big));
        let err = partition(&g, &cluster(1), 1, &PartitionConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::InsufficientResources { .. }));
    }

    #[test]
    fn design_too_big_for_cluster() {
        let mut g = TaskGraph::new("huge2");
        let big = Device::u55c().resources().scale(0.6);
        for i in 0..4 {
            g.add_task(Task::compute(format!("b{i}"), big));
        }
        let err = partition(&g, &cluster(2), 2, &PartitionConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::InsufficientResources { .. }));
    }

    #[test]
    fn respects_resource_threshold_per_fpga() {
        let g = two_communities(8);
        let cfg = PartitionConfig::default();
        let cl = cluster(2);
        let p = partition(&g, &cl, 2, &cfg).unwrap();
        let cap = usable_capacity(&cl, 2);
        for u in &p.used {
            assert!(u.fits_within(&cap, cfg.threshold + 1e-9));
        }
    }

    #[test]
    fn four_fpga_ring_partition_is_feasible_and_cheap() {
        // A 4-stage pipeline of communities should map one community per
        // FPGA with chain-adjacent cuts.
        let mut g = TaskGraph::new("pipe4");
        let r = Resources::new(150_000, 300_000, 200, 500, 50);
        let mut prev: Option<TaskId> = None;
        for i in 0..16 {
            let t = g.add_task(Task::compute(format!("t{i}"), r));
            if let Some(p) = prev {
                g.add_fifo(Fifo::new(format!("e{i}"), p, t, 512));
            }
            prev = Some(t);
        }
        let cl = cluster(4);
        let p = partition(&g, &cl, 4, &PartitionConfig::default()).unwrap();
        let cap = usable_capacity(&cl, 4);
        for u in &p.used {
            assert!(u.fits_within(&cap, 0.7 + 1e-9));
        }
        // A chain over 4 devices needs at least 3 cut edges.
        assert!(p.cut_width_bits >= 3 * 512);
        // All four FPGAs host something (load must spread).
        assert!(p.used.iter().all(|u| !u.is_zero()));
    }

    #[test]
    fn solve_stats_cover_every_bisection_level() {
        let g = two_communities(8);
        let p = partition(&g, &cluster(4), 4, &PartitionConfig::default()).unwrap();
        // 4 devices → a top split (level 0) and two leaf splits (level 1).
        let levels: Vec<usize> = p.solve_stats.iter().map(|s| s.level).collect();
        assert_eq!(levels, vec![0, 1], "stats: {:?}", p.solve_stats);
        assert_eq!(p.solve_stats[1].solves, 2);
    }

    #[test]
    fn sequential_and_parallel_backends_find_the_same_cut() {
        use tapacs_ilp::{SolverBackend, SolverOptions};
        let g = two_communities(6);
        let mut results = Vec::new();
        for (backend, threads) in [
            (SolverBackend::Sequential, 1),
            (SolverBackend::Parallel, 1),
            (SolverBackend::Parallel, 4),
        ] {
            let cfg = PartitionConfig {
                solver: SolverOptions { backend, threads, cache: false, ..Default::default() },
                ..Default::default()
            };
            let p = partition(&g, &cluster(2), 2, &cfg).unwrap();
            results.push(p.cut_width_bits);
        }
        // The optimal cut (the 32-bit bridge) is unique; every backend must
        // find it.
        assert_eq!(results, vec![32, 32, 32]);
    }

    #[test]
    fn comm_cost_consistent_with_cut() {
        let g = two_communities(4);
        let cl = cluster(2);
        let p = partition(&g, &cl, 2, &PartitionConfig::default()).unwrap();
        // In a 2-FPGA ring dist = 1 for cross edges, so cost == cut width.
        assert!((p.comm_cost - p.cut_width_bits as f64).abs() < 1e-9);
    }

    #[test]
    fn runtime_recorded() {
        let g = two_communities(4);
        let p = partition(&g, &cluster(2), 2, &PartitionConfig::default()).unwrap();
        assert!(p.runtime.as_secs_f64() >= 0.0);
    }

    #[test]
    fn large_graph_coarsens_and_finishes_quickly() {
        // 200 modules in a grid-ish structure; must finish well under the
        // configured budget thanks to coarsening.
        let mut g = TaskGraph::new("grid");
        let r = Resources::new(8_000, 16_000, 10, 20, 2);
        let cols = 20;
        let ids: Vec<TaskId> =
            (0..200).map(|i| g.add_task(Task::compute(format!("t{i}"), r))).collect();
        for i in 0..200 {
            if (i + 1) % cols != 0 {
                g.add_fifo(Fifo::new(format!("h{i}"), ids[i], ids[i + 1], 64));
            }
            if i + cols < 200 {
                g.add_fifo(Fifo::new(format!("v{i}"), ids[i], ids[i + cols], 64));
            }
        }
        let cfg = PartitionConfig { time_limit_s: 3.0, ..Default::default() };
        let t0 = Instant::now();
        let p = partition(&g, &cluster(4), 4, &cfg).unwrap();
        assert!(t0.elapsed().as_secs() < 30, "partitioner too slow");
        assert!(p.used.iter().all(|u| !u.is_zero()));
    }
}
