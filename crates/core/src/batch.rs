//! Sharded multi-design batch compilation.
//!
//! The paper's evaluation compiles dozens of independent
//! (benchmark × flow × cluster-size) points; compiling them one after
//! another leaves most cores idle and re-solves structurally identical
//! bisection ILPs from scratch. [`BatchCompiler`] turns a whole sweep into
//! one shared work queue:
//!
//! * jobs are pulled off a deterministic atomic queue by scoped worker
//!   threads (the same `std::thread::scope` sharding the parallel
//!   branch-and-bound backend uses), so the sweep's wall-clock approaches
//!   the longest single job instead of the sum;
//! * every job shares the process-wide [`SolveCache`], so a bisection ILP
//!   solved for one design answers instantly for every structurally
//!   identical sibling in the sweep (cross-design hits);
//! * each job compiles under its own scoped [`SolveActivity`] handle, so
//!   LP-engine
//!   counters are attributed per job even while jobs interleave, and merge
//!   into the aggregated [`BatchReport`];
//! * results come back in **input order** as per-job
//!   `Result<CompiledDesign, CompileError>` — one infeasible design fails
//!   its own slot, never the queue — and are bit-identical to a sequential
//!   loop for every thread count, because each job's compile is itself
//!   deterministic and jobs share no mutable state beyond the (replay-safe)
//!   solve cache.
//!
//! `TAPACS_BATCH_THREADS` pins the queue's worker count from the
//! environment (CI uses `1` to cross-check determinism).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use tapacs_graph::TaskGraph;
use tapacs_ilp::{
    fault_fires, CacheStats, CancellationToken, FaultKind, SolveActivity, SolveCache, SolveStats,
    INJECTED_PANIC_MARKER,
};
use tapacs_net::Cluster;

use crate::compiler::{CompiledDesign, Compiler, CompilerConfig, Flow};
use crate::error::CompileError;
use crate::stage::{CompileOverrides, Stage, StageTiming};

/// One design to compile: a graph, a flow, and optional per-job cluster /
/// config / stage overrides (falling back to the [`BatchCompiler`]'s
/// defaults when absent).
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// Label used in reports (`"stencil/F2"`, …).
    pub name: String,
    /// The design's task graph.
    pub graph: TaskGraph,
    /// The flow to compile it under.
    pub flow: Flow,
    /// Cluster override (defaults to the batch compiler's cluster).
    pub cluster: Option<Cluster>,
    /// Config override (defaults to the batch compiler's config).
    pub config: Option<CompilerConfig>,
    /// Per-stage overrides (see [`CompileOverrides`]).
    pub overrides: CompileOverrides,
    /// Wall-clock budget for this job. When set, a deadline
    /// [`CancellationToken`] is armed at job start and threaded into every
    /// ILP solve; expiry feeds the degradation ladder (the job completes
    /// with greedy/heuristic stand-ins, marked degraded) and the job is
    /// reported in the [`BatchReport::budget_expired`] bucket. The
    /// adaptive DSE rungs use this to bound a sweep's wall-clock on
    /// pathological points.
    pub budget: Option<Duration>,
}

impl CompileJob {
    /// A job with no per-job overrides.
    pub fn new(name: impl Into<String>, graph: TaskGraph, flow: Flow) -> Self {
        Self {
            name: name.into(),
            graph,
            flow,
            cluster: None,
            config: None,
            overrides: CompileOverrides::default(),
            budget: None,
        }
    }

    /// Compiles this job against its own cluster instead of the batch
    /// default (sweeps mixing cluster sizes need this).
    #[must_use]
    pub fn on_cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Compiles this job with its own compiler configuration.
    #[must_use]
    pub fn with_config(mut self, config: CompilerConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Applies per-stage overrides to this job.
    #[must_use]
    pub fn with_overrides(mut self, overrides: CompileOverrides) -> Self {
        self.overrides = overrides;
        self
    }

    /// Bounds this job's compile wall-clock (see [`CompileJob::budget`]).
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// Per-job slice of the [`BatchReport`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's label.
    pub name: String,
    /// The job's flow.
    pub flow: Flow,
    /// End-to-end compile wall-clock of this job.
    pub wall: Duration,
    /// Wall-clock per executed stage.
    pub timings: Vec<StageTiming>,
    /// The stage that failed, when the job failed. A worker panic caught
    /// before the first stage ran leaves this `None` even though
    /// [`failed`](Self::failed) is set.
    pub failed_stage: Option<Stage>,
    /// Whether the job failed (stage error *or* isolated worker panic).
    pub failed: bool,
    /// Whether the failure was a worker panic caught at the job boundary
    /// (implies [`failed`](Self::failed); the result slot holds
    /// [`CompileError::WorkerPanicked`]).
    pub panicked: bool,
    /// Whether the compiled design is marked degraded: some ILP stage fell
    /// back to its heuristic incumbent after a solver timeout.
    pub degraded: bool,
    /// Whether the job's [`CompileJob::budget`] deadline expired before it
    /// finished cleanly: the design completed through the degradation
    /// ladder, truncated by the budget rather than by a solver's own time
    /// limit. Distinct from [`failed`](Self::failed) — the job produced a
    /// design — and excluded from the sequential estimate (its wall
    /// measures the budget, not the compile).
    pub budget_expired: bool,
    /// LP-engine activity attributed to this job (scoped handle).
    pub engine: SolveStats,
}

/// Summed wall-clock of one stage across every job of a batch.
#[derive(Debug, Clone, Copy)]
pub struct StageTotal {
    /// The stage.
    pub stage: Stage,
    /// Jobs that executed it.
    pub jobs: usize,
    /// Summed wall-clock across those jobs.
    pub wall: Duration,
}

/// Aggregated outcome of one [`BatchCompiler::compile`] run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker threads the queue actually used.
    pub threads: usize,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
    /// Estimated sequential wall-clock: the sum of per-job compile times
    /// as measured inside this batch. An *estimate* because cache sharing
    /// and core contention differ in a true sequential loop.
    ///
    /// Budget-expired jobs are excluded: their wall measures the budget
    /// that cut them off, not what a sequential full compile would have
    /// cost, so summing them would inflate the estimate (and the claimed
    /// speedup) with made-up work. Their truncated walls are tracked in
    /// [`budget_expired_wall`](Self::budget_expired_wall) instead.
    pub sequential_estimate: Duration,
    /// Summed wall-clock of budget-expired jobs (kept out of
    /// [`sequential_estimate`](Self::sequential_estimate)).
    pub budget_expired_wall: Duration,
    /// One report per job, in input order.
    pub jobs: Vec<JobReport>,
    /// Per-stage wall-clock totals across the batch, in stage order.
    pub stage_totals: Vec<StageTotal>,
    /// Solve-cache lookups during the batch (process-wide delta —
    /// cross-design hits show up here).
    pub cache: CacheStats,
    /// Merged LP-engine counters over every job's scoped handle.
    pub engine: SolveStats,
}

impl BatchReport {
    /// `sequential_estimate / wall`: how much the shared queue beat the
    /// sum of its parts (≈ 1.0 on one worker).
    pub fn speedup_estimate(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.sequential_estimate.as_secs_f64() / wall
        }
    }

    /// Jobs that compiled successfully (degraded results count: they
    /// produced a valid design).
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| !j.failed).count()
    }

    /// Jobs that compiled but carry a degraded (heuristic-fallback) result
    /// for reasons *other* than a job-budget expiry — those are counted in
    /// [`budget_expired`](Self::budget_expired); the buckets are disjoint.
    pub fn degraded(&self) -> usize {
        self.jobs.iter().filter(|j| !j.failed && j.degraded && !j.budget_expired).count()
    }

    /// Jobs cut off by their [`CompileJob::budget`] deadline (a distinct
    /// bucket: they produced a degraded design, they did not fail).
    pub fn budget_expired(&self) -> usize {
        self.jobs.iter().filter(|j| !j.failed && j.budget_expired).count()
    }

    /// Jobs that failed (stage errors and isolated worker panics alike).
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| j.failed).count()
    }

    /// Jobs whose failure was an isolated worker panic.
    pub fn panicked(&self) -> usize {
        self.jobs.iter().filter(|j| j.panicked).count()
    }

    /// ASCII rendering: one row per job, stage totals, cache and engine
    /// lines.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("job                     flow   wall(s)  outcome\n");
        for j in &self.jobs {
            let outcome = if j.panicked {
                match j.failed_stage {
                    Some(stage) => format!("panicked during {stage}"),
                    None => "panicked".to_string(),
                }
            } else if let Some(stage) = j.failed_stage {
                format!("failed at {stage}")
            } else if j.budget_expired {
                "ok (budget expired)".to_string()
            } else if j.degraded {
                "ok (degraded)".to_string()
            } else {
                "ok".to_string()
            };
            let _ = writeln!(
                s,
                "{:<23} {:<6} {:<8.3} {}",
                j.name,
                j.flow.label(),
                j.wall.as_secs_f64(),
                outcome
            );
        }
        s.push_str("stage totals: ");
        let mut first = true;
        for t in &self.stage_totals {
            if !first {
                s.push_str(", ");
            }
            first = false;
            let _ = write!(s, "{} {:.3}s/{}", t.stage, t.wall.as_secs_f64(), t.jobs);
        }
        s.push('\n');
        let _ = writeln!(
            s,
            "batch: {} job(s) on {} thread(s) in {:.3}s (sequential estimate {:.3}s, {:.2}x)",
            self.jobs.len(),
            self.threads,
            self.wall.as_secs_f64(),
            self.sequential_estimate.as_secs_f64(),
            self.speedup_estimate(),
        );
        if self.budget_expired() > 0 {
            let _ = writeln!(
                s,
                "budget expired: {} job(s), {:.3}s truncated wall (excluded from the estimate)",
                self.budget_expired(),
                self.budget_expired_wall.as_secs_f64(),
            );
        }
        let _ = writeln!(
            s,
            "solve cache: {} hits / {} misses ({:.0}% hit rate) across the batch",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
        );
        let _ = writeln!(
            s,
            "LP engine: {} simplex iterations over {} solves, warm starts {}/{} ({:.0}%)",
            self.engine.simplex_iterations,
            self.engine.lp_solves,
            self.engine.warm_hits,
            self.engine.warm_attempts,
            self.engine.warm_hit_rate() * 100.0,
        );
        s
    }
}

/// Results plus the aggregated report of one batch run.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-job outcome, in input order.
    pub results: Vec<Result<CompiledDesign, CompileError>>,
    /// The aggregated batch report.
    pub report: BatchReport,
}

/// Best-effort string form of a caught panic payload (panics almost always
/// carry `&str` or `String`).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The sharded multi-design compile engine. See the [module](self) docs.
#[derive(Debug, Clone)]
pub struct BatchCompiler {
    cluster: Cluster,
    config: CompilerConfig,
    threads: usize,
}

impl BatchCompiler {
    /// A batch compiler with default configuration. The worker count
    /// honours `TAPACS_BATCH_THREADS` when set (`0` or unset = all cores).
    pub fn new(cluster: Cluster) -> Self {
        Self::with_config(cluster, CompilerConfig::default())
    }

    /// A batch compiler with an explicit default configuration.
    pub fn with_config(cluster: Cluster, config: CompilerConfig) -> Self {
        let threads = std::env::var("TAPACS_BATCH_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        Self { cluster, config, threads }
    }

    /// Pins the worker-thread count (`0` =
    /// [`std::thread::available_parallelism`]), overriding the
    /// environment.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker count a batch of `jobs` designs would use.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        let hw = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        hw.clamp(1, jobs.max(1))
    }

    /// Compiles one job under its own scoped activity handle.
    /// `solver_share` is the slice of the machine this job's *internal*
    /// solver parallelism may claim (cores / batch workers): with both the
    /// queue and the per-job parallel branch and bound defaulting to "all
    /// cores", an evaluation sweep would otherwise run `workers × cores`
    /// runnable threads. The cap only applies to auto (`threads == 0`)
    /// solver options — an explicit pin (including `TAPACS_SOLVER_THREADS`)
    /// is respected — and cannot change any result: the parallel backend
    /// is bit-identical for every thread count.
    fn run_job(
        &self,
        job: &CompileJob,
        solver_share: usize,
    ) -> (Result<CompiledDesign, CompileError>, JobReport) {
        let activity = Arc::new(SolveActivity::default());
        let cluster = job.cluster.as_ref().unwrap_or(&self.cluster);
        let mut config = job.config.as_ref().unwrap_or(&self.config).clone();
        if config.solver.threads == 0 && solver_share > 0 {
            config.solver.threads = solver_share;
        }
        // Injected solver timeout: zero ILP budget forces deterministic
        // deadline expiry, so the degradation ladder takes over (the job
        // still succeeds, marked degraded).
        if fault_fires(FaultKind::Timeout, &job.name) {
            config.partition.time_limit_s = 0.0;
            config.floorplan.time_limit_s = 0.0;
        }
        // Arm the per-job budget deadline: one token shared by every ILP
        // solve of this job. Deadline expiry (never an external cancel) is
        // handled by the degradation ladder, so the job still completes —
        // truncated, marked degraded, and binned as budget-expired below.
        let budget_token = job.budget.map(CancellationToken::with_timeout);
        if let Some(token) = &budget_token {
            config.partition.cancel = Some(token.clone());
            config.floorplan.cancel = Some(token.clone());
        }
        let compiler = Compiler::with_config(cluster.clone(), config);
        let t0 = Instant::now();
        // Injected stage failure: the job fails per-job, like any organic
        // stage error, without running the pipeline.
        if fault_fires(FaultKind::Stage, &job.name) {
            let report = JobReport {
                name: job.name.clone(),
                flow: job.flow,
                wall: t0.elapsed(),
                timings: Vec::new(),
                failed_stage: Some(Stage::Partition),
                failed: true,
                panicked: false,
                degraded: false,
                budget_expired: false,
                engine: activity.snapshot(),
            };
            let err = CompileError::Solver(format!("injected stage fault: {}", job.name));
            return (Err(err), report);
        }
        // Panic isolation: a panic anywhere in the pipeline (organic or
        // injected) is caught at the job boundary, attributed to the stage
        // that was executing, and converted into this job's error — the
        // worker thread survives and the rest of the sweep is unaffected.
        crate::stage::set_current_stage(None);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if fault_fires(FaultKind::Panic, &job.name) {
                panic!("{INJECTED_PANIC_MARKER}: {}", job.name);
            }
            SolveActivity::scoped(&activity, || {
                compiler.compile_staged_with(&job.graph, job.flow, job.overrides.clone())
            })
        }));
        let wall = t0.elapsed();
        match caught {
            Ok(ctx) => {
                let degraded = ctx.partition.as_ref().is_some_and(|p| p.degraded)
                    || ctx.floorplan.as_ref().is_some_and(|f| f.degraded);
                // Budget-expired = the deadline tripped *and* the design
                // went through the degradation ladder. A job that finished
                // cleanly just before the deadline stays a clean success.
                let budget_expired = degraded
                    && budget_token
                        .as_ref()
                        .is_some_and(|t| t.is_cancelled() && !t.cancelled_externally());
                let report = JobReport {
                    name: job.name.clone(),
                    flow: job.flow,
                    wall,
                    timings: ctx.timings.clone(),
                    failed_stage: ctx.failed_stage(),
                    failed: ctx.failure.is_some(),
                    panicked: false,
                    degraded,
                    budget_expired,
                    engine: activity.snapshot(),
                };
                (ctx.into_result(), report)
            }
            Err(payload) => {
                let stage = crate::stage::current_stage();
                crate::stage::set_current_stage(None);
                let report = JobReport {
                    name: job.name.clone(),
                    flow: job.flow,
                    wall,
                    timings: Vec::new(),
                    failed_stage: stage,
                    failed: true,
                    panicked: true,
                    degraded: false,
                    budget_expired: false,
                    engine: activity.snapshot(),
                };
                // `&*`: downcast the boxed payload, not the box itself.
                let err =
                    CompileError::WorkerPanicked { stage, payload: payload_string(&*payload) };
                (Err(err), report)
            }
        }
    }

    /// Runs every job over the sharded work queue and returns per-job
    /// results **in input order** plus the aggregated [`BatchReport`].
    ///
    /// Infeasible or otherwise failing designs occupy their own `Err`
    /// slot; the queue always drains completely.
    pub fn compile(&self, jobs: Vec<CompileJob>) -> BatchOutcome {
        let n = jobs.len();
        let threads = self.resolved_threads(n);
        let cache_before = SolveCache::global().stats();
        let t0 = Instant::now();

        let mut slots: Vec<OnceLock<(Result<CompiledDesign, CompileError>, JobReport)>> =
            Vec::new();
        slots.resize_with(n, OnceLock::new);

        if threads <= 1 {
            // Sequential queue: each job may use the whole machine
            // internally (`0` leaves solver auto-threading untouched).
            for (job, slot) in jobs.iter().zip(&slots) {
                let _ = slot.set(self.run_job(job, 0));
            }
        } else {
            // Split the machine between queue workers: each concurrent job
            // gets `cores / workers` internal solver threads (see
            // `run_job`) instead of every job claiming all cores at once.
            let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            let solver_share = (cores / threads).max(1);
            // Deterministic sharding: workers pop the next unclaimed job
            // index; each index is processed exactly once and its result
            // lands in its own slot, so the output order — and every
            // individual design — is independent of the interleaving.
            // Attribution note: every solve of a job runs inside that
            // job's own scope (scopes replace, they do not stack), so a
            // scope installed around the whole batch intentionally sees
            // nothing — batch-wide numbers come from `BatchReport::engine`.
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let (jobs, slots, next) = (&jobs, &slots, &next);
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        // Second isolation layer: `run_job` catches panics
                        // itself, but if one still escapes (a double fault
                        // in the handler, say) the worker dies *quietly* —
                        // `thread::scope` would otherwise re-raise at join
                        // and abort the whole sweep. The unfilled slot is
                        // re-run by the straggler pass below.
                        let result =
                            catch_unwind(AssertUnwindSafe(|| self.run_job(job, solver_share)));
                        match result {
                            Ok(r) => {
                                let _ = slots[i].set(r);
                            }
                            Err(_) => break,
                        }
                    });
                }
            });
            // Worker-respawn equivalent: any jobs orphaned by a dead worker
            // are finished on this thread (each job's compile is
            // deterministic, so where it runs cannot change its result).
            for (job, slot) in jobs.iter().zip(&slots) {
                if slot.get().is_none() {
                    let _ = slot.set(self.run_job(job, solver_share));
                }
            }
        }

        let wall = t0.elapsed();
        let cache = SolveCache::global().stats().since(&cache_before);

        let mut results = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for slot in slots {
            let (result, report) = slot.into_inner().expect("every queued job must complete");
            results.push(result);
            reports.push(report);
        }

        let sequential_estimate =
            reports.iter().filter(|r| !r.budget_expired).map(|r| r.wall).sum();
        let budget_expired_wall = reports.iter().filter(|r| r.budget_expired).map(|r| r.wall).sum();
        let engine = reports.iter().fold(SolveStats::default(), |acc, r| acc.merged(&r.engine));
        let stage_totals = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let mut jobs = 0;
                let mut total = Duration::ZERO;
                for r in &reports {
                    for t in &r.timings {
                        if t.stage == stage {
                            jobs += 1;
                            total += t.wall;
                        }
                    }
                }
                (jobs > 0).then_some(StageTotal { stage, jobs, wall: total })
            })
            .collect();

        BatchOutcome {
            results,
            report: BatchReport {
                threads,
                wall,
                sequential_estimate,
                budget_expired_wall,
                jobs: reports,
                stage_totals,
                cache,
                engine,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_fpga::{Device, Resources};
    use tapacs_graph::{Fifo, Task};
    use tapacs_net::Topology;

    fn chain_graph(name: &str, pes: usize, pe: Resources) -> TaskGraph {
        let mut g = TaskGraph::new(name);
        let io = Resources::new(30_000, 60_000, 60, 0, 20);
        let rd = g.add_task(Task::hbm_read("rd", io, 0, 512, 65_536).with_total_blocks(64));
        let mut prev = rd;
        for i in 0..pes {
            let t = g.add_task(
                Task::compute(format!("pe{i}"), pe)
                    .with_cycles_per_block(1_000)
                    .with_total_blocks(64),
            );
            g.add_fifo(Fifo::new(format!("f{i}"), prev, t, 512).with_block_bytes(65_536));
            prev = t;
        }
        let wr = g.add_task(Task::hbm_write("wr", io, 1, 512, 65_536).with_total_blocks(64));
        g.add_fifo(Fifo::new("out", prev, wr, 512).with_block_bytes(65_536));
        g
    }

    fn cluster4() -> Cluster {
        Cluster::single_node(Device::u55c(), 4, Topology::Ring)
    }

    fn demo_jobs() -> Vec<CompileJob> {
        let pe = Resources::new(40_000, 80_000, 100, 200, 10);
        vec![
            CompileJob::new("a", chain_graph("a", 6, pe), Flow::TapaCs { n_fpgas: 2 }),
            CompileJob::new("b", chain_graph("b", 4, pe), Flow::TapaSingle),
            CompileJob::new("c", chain_graph("c", 6, pe), Flow::TapaCs { n_fpgas: 4 }),
        ]
    }

    #[test]
    fn batch_results_arrive_in_input_order() {
        let outcome = BatchCompiler::new(cluster4()).threads(2).compile(demo_jobs());
        assert_eq!(outcome.results.len(), 3);
        let flows: Vec<usize> =
            outcome.results.iter().map(|r| r.as_ref().unwrap().n_fpgas()).collect();
        assert_eq!(flows, vec![2, 1, 4]);
        assert_eq!(outcome.report.jobs[1].name, "b");
        assert_eq!(outcome.report.succeeded(), 3);
    }

    #[test]
    fn failing_job_does_not_abort_the_queue() {
        let mut jobs = demo_jobs();
        // A flow larger than the cluster: per-job ClusterTooSmall.
        jobs.insert(
            1,
            CompileJob::new(
                "too-big",
                chain_graph("d", 4, Resources::new(40_000, 80_000, 100, 200, 10)),
                Flow::TapaCs { n_fpgas: 9 },
            ),
        );
        let outcome = BatchCompiler::new(cluster4()).threads(2).compile(jobs);
        assert_eq!(outcome.results.len(), 4);
        assert!(matches!(
            outcome.results[1],
            Err(CompileError::ClusterTooSmall { needed: 9, available: 4 })
        ));
        assert_eq!(outcome.report.jobs[1].failed_stage, Some(Stage::Validate));
        // The other three still compiled.
        assert_eq!(outcome.report.succeeded(), 3);
    }

    #[test]
    fn batch_matches_sequential_loop_bit_for_bit() {
        // Cache off so every batch run solves live — with a warm global
        // cache the comparison would only verify replay, not concurrent
        // solving.
        let mut config = CompilerConfig::default();
        config.solver.cache = false;
        let jobs = demo_jobs();
        let compiler = Compiler::with_config(cluster4(), config.clone());
        let reference: Vec<_> =
            jobs.iter().map(|j| compiler.compile(&j.graph, j.flow).unwrap()).collect();
        for threads in [1, 2, 3] {
            let outcome = BatchCompiler::with_config(cluster4(), config.clone())
                .threads(threads)
                .compile(jobs.clone());
            for (r, want) in outcome.results.iter().zip(&reference) {
                let got = r.as_ref().unwrap();
                assert_eq!(got.placement.fpga_of_task, want.placement.fpga_of_task);
                assert_eq!(got.slot_of_task, want.slot_of_task);
                assert_eq!(got.timing.freq_mhz, want.timing.freq_mhz);
            }
        }
    }

    #[test]
    fn report_aggregates_stages_and_engine() {
        // Cache off: a warm global cache would replay every solve and
        // leave the scoped engine counters legitimately at zero.
        let mut config = CompilerConfig::default();
        config.solver.cache = false;
        let outcome =
            BatchCompiler::with_config(cluster4(), config).threads(2).compile(demo_jobs());
        let report = &outcome.report;
        assert!(report.engine.lp_solves > 0, "jobs must record scoped LP activity");
        for job in &report.jobs {
            assert_eq!(job.timings.len(), Stage::ALL.len(), "{}: all stages run", job.name);
        }
        let partition = report.stage_totals.iter().find(|t| t.stage == Stage::Partition).unwrap();
        assert_eq!(partition.jobs, 3);
        // The estimate sums per-job walls only; with sub-millisecond solves
        // the batch wall is dominated by worker spawn/teardown, so compare
        // with a small scheduling-overhead allowance.
        let overhead = Duration::from_millis(50);
        assert!(report.sequential_estimate + overhead >= report.wall || report.threads == 1);
        let table = report.render_table();
        assert!(table.contains("batch: 3 job(s)"), "{table}");
        assert!(table.contains("solve cache"), "{table}");
    }

    #[test]
    fn zero_budget_expires_deterministically_and_stays_out_of_the_estimate() {
        // Cache off so the budgeted job cannot complete by replaying a
        // sibling's cached solves before its deadline is even consulted.
        let mut config = CompilerConfig::default();
        config.solver.cache = false;
        let mut jobs = demo_jobs();
        jobs[1] = jobs[1].clone().with_budget(Duration::ZERO);
        let outcome = BatchCompiler::with_config(cluster4(), config).threads(2).compile(jobs);
        let report = &outcome.report;

        // The budgeted job still produced a design — truncated, degraded,
        // and binned separately from both `failed` and `degraded`.
        assert!(outcome.results[1].is_ok(), "budget expiry must not fail the job");
        assert!(report.jobs[1].budget_expired && report.jobs[1].degraded);
        assert_eq!((report.budget_expired(), report.failed(), report.degraded()), (1, 0, 0));
        assert_eq!(report.succeeded(), 3);

        // Its truncated wall is excluded from the sequential estimate.
        let full_walls: Duration =
            report.jobs.iter().enumerate().filter(|(i, _)| *i != 1).map(|(_, j)| j.wall).sum();
        assert_eq!(report.sequential_estimate, full_walls);
        assert_eq!(report.budget_expired_wall, report.jobs[1].wall);
        let table = report.render_table();
        assert!(table.contains("ok (budget expired)"), "{table}");
        assert!(table.contains("budget expired: 1 job(s)"), "{table}");
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let mut config = CompilerConfig::default();
        config.solver.cache = false;
        let generous: Vec<CompileJob> =
            demo_jobs().into_iter().map(|j| j.with_budget(Duration::from_secs(3600))).collect();
        let reference =
            BatchCompiler::with_config(cluster4(), config.clone()).threads(2).compile(demo_jobs());
        let budgeted = BatchCompiler::with_config(cluster4(), config).threads(2).compile(generous);
        assert_eq!(budgeted.report.budget_expired(), 0);
        for (b, r) in budgeted.results.iter().zip(&reference.results) {
            let (b, r) = (b.as_ref().unwrap(), r.as_ref().unwrap());
            assert_eq!(b.placement.fpga_of_task, r.placement.fpga_of_task);
            assert_eq!(b.slot_of_task, r.slot_of_task);
            assert_eq!(b.timing.freq_mhz, r.timing.freq_mhz);
        }
    }

    #[test]
    fn env_pins_worker_count() {
        // `threads()` overrides whatever the constructor read from the env.
        let b = BatchCompiler::new(cluster4()).threads(1);
        assert_eq!(b.resolved_threads(8), 1);
        let many = BatchCompiler::new(cluster4()).threads(16);
        assert_eq!(many.resolved_threads(2), 2, "never more workers than jobs");
    }
}
