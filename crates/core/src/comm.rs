//! Step 4 — inter-FPGA communication logic insertion (§4.4).
//!
//! Every FIFO whose endpoints were assigned to different FPGAs is split
//! through a pair of AlveoLink endpoint tasks: `src → send ⇢ recv → dst`,
//! where `⇢` is the physical network channel. The latency-insensitive
//! design discipline (§4.3) is what makes this legal: tasks tolerate
//! arbitrary channel latency without functional change.
//!
//! The AlveoLink networking IP itself (HiveNet + CMAC) costs ~2-3% of
//! LUT/FF/BRAM per QSFP28 port (§5.6); that overhead is charged to every
//! FPGA that terminates at least one network channel.

use serde::{Deserialize, Serialize};
use tapacs_fpga::{Device, Resources};
use tapacs_graph::{Fifo, Task, TaskGraph, TaskKind};
use tapacs_net::AlveoLink;

use crate::estimate;

/// Result of communication-logic insertion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommInsertion {
    /// The rewritten graph (original tasks keep their ids; endpoint tasks
    /// are appended).
    pub graph: TaskGraph,
    /// Extended FPGA assignment covering the appended endpoint tasks.
    pub assignment: Vec<usize>,
    /// AlveoLink IP overhead charged per FPGA.
    pub overhead_per_fpga: Vec<Resources>,
    /// QSFP28 ports in use per FPGA.
    pub ports_used: Vec<usize>,
    /// Number of send/recv endpoint pairs inserted.
    pub channels_inserted: usize,
}

/// Splits every FPGA-crossing FIFO through AlveoLink endpoints.
pub fn insert_comm(
    graph: &TaskGraph,
    assignment: &[usize],
    device: &Device,
    n_fpgas: usize,
) -> CommInsertion {
    assert_eq!(assignment.len(), graph.num_tasks(), "assignment must cover the graph");

    let mut out = TaskGraph::new(format!("{}+comm", graph.name()));
    let mut new_assign = Vec::with_capacity(graph.num_tasks());
    for (id, t) in graph.tasks() {
        out.add_task(t.clone());
        new_assign.push(assignment[id.index()]);
    }

    // Distinct neighbor FPGAs per FPGA → ports used.
    let mut neighbors: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n_fpgas];
    let mut channels_inserted = 0;

    for (_, f) in graph.fifos() {
        let (fa, fb) = (assignment[f.src.index()], assignment[f.dst.index()]);
        if fa == fb {
            out.add_fifo(f.clone());
            continue;
        }
        channels_inserted += 1;
        neighbors[fa].insert(fb);
        neighbors[fb].insert(fa);
        // Blocks actually traversing the channel: firings × fan-out.
        let src_task = graph.task(f.src);
        let blocks = src_task.total_blocks * src_task.produce_per_firing;
        let send = out.add_task(Task {
            name: format!("{}_send", f.name),
            kind: TaskKind::NetSend,
            resources: estimate::net_endpoint_module(f.width_bits),
            cycles_per_block: 4,
            total_blocks: blocks,
            consume_per_firing: 1,
            produce_per_firing: 1,
        });
        new_assign.push(fa);
        let recv = out.add_task(Task {
            name: format!("{}_recv", f.name),
            kind: TaskKind::NetRecv,
            resources: estimate::net_endpoint_module(f.width_bits),
            cycles_per_block: 4,
            total_blocks: blocks,
            consume_per_firing: 1,
            produce_per_firing: 1,
        });
        new_assign.push(fb);
        out.add_fifo(
            Fifo::new(format!("{}_tx", f.name), f.src, send, f.width_bits)
                .with_block_bytes(f.block_bytes)
                .with_depth_blocks(f.depth_blocks),
        );
        out.add_fifo(
            Fifo::new(format!("{}_net", f.name), send, recv, f.width_bits)
                .with_block_bytes(f.block_bytes)
                .with_depth_blocks(f.depth_blocks.max(4)),
        );
        out.add_fifo(
            Fifo::new(format!("{}_rx", f.name), recv, f.dst, f.width_bits)
                .with_block_bytes(f.block_bytes)
                .with_depth_blocks(f.depth_blocks)
                // Credit tokens seeded on a cut cycle live at the consumer.
                .with_initial_blocks(f.initial_blocks),
        );
    }

    let ports_used: Vec<usize> =
        neighbors.iter().map(|n| n.len().min(device.qsfp_ports())).collect();
    let overhead_per_fpga: Vec<Resources> = ports_used
        .iter()
        .map(
            |&p| {
                if p == 0 {
                    Resources::ZERO
                } else {
                    AlveoLink::resource_overhead_for(device, p)
                }
            },
        )
        .collect();

    CommInsertion {
        graph: out,
        assignment: new_assign,
        overhead_per_fpga,
        ports_used,
        channels_inserted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_graph::TaskId;

    fn simple_cut_graph() -> (TaskGraph, Vec<usize>) {
        let mut g = TaskGraph::new("g");
        let a =
            g.add_task(Task::compute("a", Resources::new(10, 10, 0, 0, 0)).with_total_blocks(8));
        let b =
            g.add_task(Task::compute("b", Resources::new(10, 10, 0, 0, 0)).with_total_blocks(8));
        let c =
            g.add_task(Task::compute("c", Resources::new(10, 10, 0, 0, 0)).with_total_blocks(8));
        g.add_fifo(Fifo::new("ab", a, b, 512).with_block_bytes(1024));
        g.add_fifo(Fifo::new("bc", b, c, 256));
        (g, vec![0, 1, 1])
    }

    #[test]
    fn cut_fifo_split_into_three() {
        let (g, asg) = simple_cut_graph();
        let ins = insert_comm(&g, &asg, &Device::u55c(), 2);
        // ab crosses → +2 tasks, ab replaced by 3 fifos; bc stays.
        assert_eq!(ins.channels_inserted, 1);
        assert_eq!(ins.graph.num_tasks(), 5);
        assert_eq!(ins.graph.num_fifos(), 4);
        assert_eq!(ins.assignment.len(), 5);
        // Send on FPGA 0, recv on FPGA 1.
        assert_eq!(ins.assignment[3], 0);
        assert_eq!(ins.assignment[4], 1);
        let send = ins.graph.task(TaskId::from_index(3));
        assert_eq!(send.kind, TaskKind::NetSend);
        assert_eq!(send.total_blocks, 8);
    }

    #[test]
    fn no_cut_means_untouched_graph() {
        let (g, _) = simple_cut_graph();
        let ins = insert_comm(&g, &[0, 0, 0], &Device::u55c(), 1);
        assert_eq!(ins.channels_inserted, 0);
        assert_eq!(ins.graph.num_tasks(), g.num_tasks());
        assert_eq!(ins.graph.num_fifos(), g.num_fifos());
        assert!(ins.overhead_per_fpga[0].is_zero());
    }

    #[test]
    fn ports_capped_by_device() {
        // A hub FPGA talking to 3 others can only drive 2 QSFP ports.
        let mut g = TaskGraph::new("hub");
        let hub = g.add_task(Task::compute("hub", Resources::ZERO));
        for i in 0..3 {
            let t = g.add_task(Task::compute(format!("t{i}"), Resources::ZERO));
            g.add_fifo(Fifo::new(format!("e{i}"), hub, t, 64));
        }
        let ins = insert_comm(&g, &[0, 1, 2, 3], &Device::u55c(), 4);
        assert_eq!(ins.ports_used[0], 2);
        assert_eq!(ins.ports_used[1], 1);
        // Overhead follows port count.
        assert_eq!(ins.overhead_per_fpga[0], AlveoLink::resource_overhead_for(&Device::u55c(), 2));
    }

    #[test]
    fn network_fifo_preserves_block_geometry() {
        let (g, asg) = simple_cut_graph();
        let ins = insert_comm(&g, &asg, &Device::u55c(), 2);
        let net = ins
            .graph
            .fifos()
            .find(|(_, f)| f.name.ends_with("_net"))
            .map(|(_, f)| f.clone())
            .unwrap();
        assert_eq!(net.block_bytes, 1024);
        assert_eq!(net.width_bits, 512);
    }
}
