//! The seven-step TAPA-CS compiler pipeline (Figure 5) and the evaluation
//! flows.
//!
//! Compilation runs as an explicit staged pipeline (see [`crate::stage`]):
//! [`Compiler::compile`] is a thin wrapper over
//! [`Compiler::compile_staged`] that discards the per-stage record and
//! returns the classic `Result`.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tapacs_fpga::{Resources, SlotId, TimingModel, Utilization};
use tapacs_graph::TaskGraph;
use tapacs_ilp::SolverOptions;
use tapacs_net::Cluster;
use tapacs_sim::{simulate, Placement, SimError, SimReport};

use crate::comm::insert_comm;
use crate::error::CompileError;
use crate::floorplan::{floorplan, floorplan_naive, rebind_hbm_channels, FloorplanConfig};
use crate::partition::{partition, usable_capacity, InterPartition, PartitionConfig};
use crate::pipeline::{pipeline, PipelineReport};
use crate::pnr::{analyze, TimingReport};
use crate::report::LevelSolveStats;
use crate::stage::{CompileContext, CompileOverrides, Stage, StageTiming};

/// The compilation flows compared in the paper's evaluation (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Flow {
    /// `F1-V`: single FPGA through plain Vitis HLS — no coarse-grained
    /// floorplanning feedback, **no interconnect pipelining**.
    VitisHls,
    /// `F1-T`: single FPGA through TAPA/AutoBridge — floorplanning +
    /// pipelining on one device.
    TapaSingle,
    /// `F2..F8`: TAPA-CS across `n_fpgas` devices of the cluster.
    TapaCs {
        /// Number of FPGAs to span.
        n_fpgas: usize,
    },
}

impl Flow {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Flow::VitisHls => "F1-V".into(),
            Flow::TapaSingle => "F1-T".into(),
            Flow::TapaCs { n_fpgas } => format!("F{n_fpgas}"),
        }
    }

    /// FPGAs used by this flow.
    pub fn n_fpgas(&self) -> usize {
        match self {
            Flow::VitisHls | Flow::TapaSingle => 1,
            Flow::TapaCs { n_fpgas } => *n_fpgas,
        }
    }

    /// Whether the flow pipelines slot crossings.
    pub fn pipelined(&self) -> bool {
        !matches!(self, Flow::VitisHls)
    }
}

/// Compiler configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Inter-FPGA partitioner knobs (threshold `T` = 0.7 by default).
    pub partition: PartitionConfig,
    /// Intra-FPGA floorplanner knobs.
    pub floorplan: FloorplanConfig,
    /// The virtual-P&R delay model.
    pub timing: TimingModel,
    /// Device-level fit threshold for the *single*-FPGA flows (Vitis/TAPA
    /// accept higher utilization than the multi-FPGA partitioner, paying
    /// frequency instead).
    pub single_fpga_threshold: f64,
    /// ILP solver backend/threads/caching, applied to *both* floorplanning
    /// stages by [`Compiler::compile`] (call [`partition`] / [`floorplan`]
    /// directly with per-stage [`SolverOptions`] for finer control).
    pub solver: SolverOptions,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        Self {
            partition: PartitionConfig::default(),
            floorplan: FloorplanConfig { slot_threshold: 0.9, ..Default::default() },
            timing: TimingModel::default(),
            single_fpga_threshold: 0.92,
            solver: SolverOptions::default(),
        }
    }
}

/// A fully compiled design: every artifact of the seven-step pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledDesign {
    /// The flow that produced this design.
    pub flow: Flow,
    /// The design after communication-logic insertion (original task ids
    /// preserved, AlveoLink endpoints appended).
    pub graph: TaskGraph,
    /// Task→FPGA assignment plus per-FPGA achieved frequency.
    pub placement: Placement,
    /// Slot per task (intra-FPGA floorplan).
    pub slot_of_task: Vec<SlotId>,
    /// Inter-FPGA partitioning outcome (`L1` runtime inside).
    pub partition: InterPartition,
    /// `true` when any ILP stage fell back to its heuristic incumbent
    /// after a solver timeout (the graceful-degradation ladder): the
    /// design is valid but not the solver's proven-or-best answer.
    /// Degraded results never enter DSE Pareto frontiers.
    #[serde(default)]
    pub degraded: bool,
    /// Intra-FPGA floorplanning runtime (the paper's `L2`).
    pub floorplan_runtime: Duration,
    /// Intra-FPGA floorplanner solve activity per bisection level (the
    /// partitioner's lives in [`InterPartition::solve_stats`]).
    pub floorplan_stats: Vec<LevelSolveStats>,
    /// Pipelining outcome.
    pub pipeline: PipelineReport,
    /// Virtual-P&R timing closure.
    pub timing: TimingReport,
    /// Whole-card utilization per FPGA (user logic + networking IP +
    /// platform), the data behind Figures 11/13/16.
    pub utilization: Vec<Utilization>,
    /// Distinct HBM channels bound per FPGA.
    pub channels_used: Vec<usize>,
    /// QSFP28 ports used per FPGA.
    pub ports_used: Vec<usize>,
    /// Wall-clock per executed pipeline stage, in execution order.
    pub stage_timings: Vec<StageTiming>,
}

impl CompiledDesign {
    /// The design clock (slowest FPGA).
    pub fn design_freq_mhz(&self) -> f64 {
        self.timing.design_freq_mhz()
    }

    /// Number of FPGAs spanned.
    pub fn n_fpgas(&self) -> usize {
        self.placement.num_fpgas()
    }

    /// Executes the compiled design on the discrete-event simulator.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (deadlock or invalid input).
    pub fn simulate(&self, cluster: &Cluster) -> Result<SimReport, SimError> {
        simulate(&self.graph, &self.placement, cluster)
    }
}

/// The TAPA-CS compiler bound to a cluster.
#[derive(Debug, Clone)]
pub struct Compiler {
    cluster: Cluster,
    config: CompilerConfig,
}

impl Compiler {
    /// A compiler with default configuration.
    pub fn new(cluster: Cluster) -> Self {
        Self { cluster, config: CompilerConfig::default() }
    }

    /// A compiler with explicit configuration.
    pub fn with_config(cluster: Cluster, config: CompilerConfig) -> Self {
        Self { cluster, config }
    }

    /// The bound cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The active configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Runs the full pipeline for a flow.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]: infeasible partitions, unroutable slots, or
    /// solver failures. For per-stage attribution use
    /// [`Compiler::compile_staged`] instead.
    pub fn compile(&self, graph: &TaskGraph, flow: Flow) -> Result<CompiledDesign, CompileError> {
        self.compile_staged(graph, flow).into_result()
    }

    /// Runs the staged pipeline and returns the full [`CompileContext`]:
    /// per-stage wall-clock, every intermediate artifact, and — on failure
    /// — the stage that rejected the design with the artifacts produced
    /// before it still inspectable.
    pub fn compile_staged(&self, graph: &TaskGraph, flow: Flow) -> CompileContext {
        self.compile_staged_with(graph, flow, CompileOverrides::default())
    }

    /// [`Compiler::compile_staged`] with per-stage overrides: seed a
    /// precomputed partition (the [`Stage::Partition`] stage is skipped),
    /// force the naive or ILP floorplanner, or toggle interconnect
    /// pipelining independently of the flow.
    pub fn compile_staged_with(
        &self,
        graph: &TaskGraph,
        flow: Flow,
        overrides: CompileOverrides,
    ) -> CompileContext {
        let pipelined = overrides.pipelined.unwrap_or_else(|| flow.pipelined());
        let naive = overrides.naive_floorplan.unwrap_or(matches!(flow, Flow::VitisHls));
        let mut ctx = CompileContext::new(flow, pipelined);
        let device = self.cluster.device().clone();
        let n = flow.n_fpgas();

        // -- Validate ------------------------------------------------------
        crate::stage::set_current_stage(Some(Stage::Validate));
        let t0 = Instant::now();
        let valid = graph
            .validate()
            .map_err(CompileError::from)
            .and_then(|()| {
                let available = self.cluster.total_fpgas();
                if n >= 1 && n <= available {
                    Ok(())
                } else {
                    Err(CompileError::ClusterTooSmall { needed: n, available })
                }
            })
            .and_then(|()| {
                // A seeded partition must cover the graph and stay inside
                // the flow's devices, or downstream stages would panic on
                // out-of-bounds indexing — per-job errors, not aborts.
                let Some(inter) = &overrides.partition else { return Ok(()) };
                if inter.assignment.len() != graph.num_tasks() {
                    return Err(CompileError::InvalidOverride {
                        detail: format!(
                            "seeded partition assigns {} task(s), graph has {}",
                            inter.assignment.len(),
                            graph.num_tasks()
                        ),
                    });
                }
                match inter.assignment.iter().find(|&&f| f >= n) {
                    Some(&f) => Err(CompileError::InvalidOverride {
                        detail: format!("seeded partition uses FPGA {f}, flow spans {n}"),
                    }),
                    None => Ok(()),
                }
            });
        ctx.record(Stage::Validate, t0.elapsed());
        if let Err(e) = valid {
            return ctx.failed(Stage::Validate, e);
        }

        // -- Partition: inter-FPGA floorplanning (equations 1-2) -----------
        // The compiler's solver options override both stage configs so one
        // knob controls the whole pipeline.
        crate::stage::set_current_stage(Some(Stage::Partition));
        match overrides.partition {
            Some(inter) => ctx.partition = Some(inter),
            None => {
                let mut pcfg = self.config.partition.clone();
                pcfg.solver = self.config.solver.clone();
                if n == 1 {
                    pcfg.threshold = self.config.single_fpga_threshold;
                }
                let t0 = Instant::now();
                let result = partition(graph, &self.cluster, n, &pcfg);
                ctx.record(Stage::Partition, t0.elapsed());
                match result {
                    Ok(inter) => ctx.partition = Some(inter),
                    Err(e) => return ctx.failed(Stage::Partition, e),
                }
            }
        }

        // -- CommInsert: communication-logic insertion ---------------------
        crate::stage::set_current_stage(Some(Stage::CommInsert));
        let t0 = Instant::now();
        let inter_assignment = &ctx.partition.as_ref().expect("partition artifact set").assignment;
        ctx.comm = Some(insert_comm(graph, inter_assignment, &device, n));
        ctx.record(Stage::CommInsert, t0.elapsed());

        // -- Floorplan: intra-FPGA floorplanning (equation 4) + HBM binding.
        // The networking IP's footprint is reserved out of each QSFP corner
        // slot so the floorplanner sees the true remaining capacity. The
        // Vitis flow gets first-fit placement instead — it has no
        // dataflow-aware floorplanning.
        crate::stage::set_current_stage(Some(Stage::Floorplan));
        let mut fcfg = self.config.floorplan.clone();
        fcfg.solver = self.config.solver.clone();
        let t0 = Instant::now();
        let result = {
            let comm = ctx.comm.as_ref().expect("comm artifact set");
            let plan = if naive { floorplan_naive } else { floorplan };
            plan(&comm.graph, &comm.assignment, n, &device, &comm.overhead_per_fpga, &fcfg)
        };
        let fp = match result {
            Ok(fp) => fp,
            Err(e) => {
                ctx.record(Stage::Floorplan, t0.elapsed());
                return ctx.failed(Stage::Floorplan, e);
            }
        };
        {
            let comm = ctx.comm.as_mut().expect("comm artifact set");
            ctx.channels_used = Some(rebind_hbm_channels(
                &mut comm.graph,
                &comm.assignment,
                &fp.slot_of_task,
                n,
                &device,
            ));
        }
        ctx.floorplan = Some(fp);
        ctx.record(Stage::Floorplan, t0.elapsed());

        // -- Pipeline: interconnect pipelining + cut-set balancing ---------
        crate::stage::set_current_stage(Some(Stage::Pipeline));
        let t0 = Instant::now();
        {
            let comm = ctx.comm.as_ref().expect("comm artifact set");
            let fp = ctx.floorplan.as_ref().expect("floorplan artifact set");
            ctx.pipeline = Some(if pipelined {
                pipeline(&comm.graph, &comm.assignment, &fp.slot_of_task)
            } else {
                PipelineReport {
                    crossing_regs: vec![0; comm.graph.num_fifos()],
                    balancing_regs: vec![0; comm.graph.num_fifos()],
                    total_register_bits: 0,
                    balanced: false,
                }
            });
        }
        ctx.record(Stage::Pipeline, t0.elapsed());

        // -- Timing: virtual place-and-route -------------------------------
        crate::stage::set_current_stage(Some(Stage::Timing));
        let t0 = Instant::now();
        let result = {
            let comm = ctx.comm.as_ref().expect("comm artifact set");
            let fp = ctx.floorplan.as_ref().expect("floorplan artifact set");
            analyze(
                &comm.graph,
                &comm.assignment,
                &fp.slot_of_task,
                n,
                &device,
                pipelined,
                &comm.overhead_per_fpga,
                &self.config.timing,
            )
        };
        ctx.record(Stage::Timing, t0.elapsed());
        match result {
            Ok(timing) => ctx.timing = Some(timing),
            Err(e) => return ctx.failed(Stage::Timing, e),
        }

        // -- Utilization: whole-card accounting (user + net IP + shell) ----
        crate::stage::set_current_stage(Some(Stage::Utilization));
        let t0 = Instant::now();
        {
            let comm = ctx.comm.as_ref().expect("comm artifact set");
            let mut used = vec![Resources::ZERO; n];
            for (id, t) in comm.graph.tasks() {
                used[comm.assignment[id.index()]] += t.resources;
            }
            ctx.utilization = Some(
                (0..n)
                    .map(|f| {
                        (used[f] + comm.overhead_per_fpga[f] + device.platform_overhead())
                            .utilization(&device.resources())
                    })
                    .collect(),
            );
        }
        ctx.record(Stage::Utilization, t0.elapsed());
        crate::stage::set_current_stage(None);
        ctx
    }
}

/// Convenience: validates that a design fits a single device at the Vitis
/// threshold — the paper's "can this be routed on one FPGA at all" check.
pub fn fits_single_fpga(graph: &TaskGraph, cluster: &Cluster, threshold: f64) -> bool {
    graph.total_resources().fits_within(&usable_capacity(cluster, 1), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_fpga::{Device, Resources};
    use tapacs_graph::{Fifo, Task};
    use tapacs_net::Topology;

    /// A pipeline with an HBM source/sink and a few PEs, sized so 1 FPGA
    /// works but is mildly congested.
    fn demo_graph(pe_count: usize, pe_res: Resources) -> TaskGraph {
        let mut g = TaskGraph::new("demo");
        let rd = g.add_task(
            Task::hbm_read("rd", Resources::new(30_000, 60_000, 60, 0, 20), 0, 512, 65_536)
                .with_total_blocks(64),
        );
        let mut prev = rd;
        for i in 0..pe_count {
            let pe = g.add_task(
                Task::compute(format!("pe{i}"), pe_res)
                    .with_cycles_per_block(1_000)
                    .with_total_blocks(64),
            );
            g.add_fifo(Fifo::new(format!("f{i}"), prev, pe, 512).with_block_bytes(65_536));
            prev = pe;
        }
        let wr = g.add_task(
            Task::hbm_write("wr", Resources::new(30_000, 60_000, 60, 0, 20), 1, 512, 65_536)
                .with_total_blocks(64),
        );
        g.add_fifo(Fifo::new("out", prev, wr, 512).with_block_bytes(65_536));
        g
    }

    fn cluster4() -> Cluster {
        Cluster::single_node(Device::u55c(), 4, Topology::Ring)
    }

    #[test]
    fn all_three_flows_compile() {
        let g = demo_graph(6, Resources::new(40_000, 80_000, 100, 200, 10));
        let c = Compiler::new(cluster4());
        for flow in [Flow::VitisHls, Flow::TapaSingle, Flow::TapaCs { n_fpgas: 2 }] {
            let d = c.compile(&g, flow).unwrap_or_else(|e| panic!("{flow:?}: {e}"));
            assert_eq!(d.n_fpgas(), flow.n_fpgas());
            assert!(d.design_freq_mhz() > 0.0);
        }
    }

    #[test]
    fn frequency_ordering_vitis_tapa_tapacs() {
        // The headline frequency claim: F1-V ≤ F1-T ≤ TAPA-CS.
        let pe = Resources::new(60_000, 120_000, 120, 400, 30);
        let g = demo_graph(8, pe);
        let c = Compiler::new(cluster4());
        let vitis = c.compile(&g, Flow::VitisHls).unwrap();
        let tapa = c.compile(&g, Flow::TapaSingle).unwrap();
        let tapacs = c.compile(&g, Flow::TapaCs { n_fpgas: 2 }).unwrap();
        assert!(
            vitis.design_freq_mhz() <= tapa.design_freq_mhz() + 1e-9,
            "Vitis {} vs TAPA {}",
            vitis.design_freq_mhz(),
            tapa.design_freq_mhz()
        );
        assert!(
            tapa.design_freq_mhz() <= tapacs.design_freq_mhz() + 1e-9,
            "TAPA {} vs TAPA-CS {}",
            tapa.design_freq_mhz(),
            tapacs.design_freq_mhz()
        );
    }

    #[test]
    fn multi_fpga_design_simulates_end_to_end() {
        let g = demo_graph(6, Resources::new(40_000, 80_000, 100, 200, 10));
        let cl = cluster4();
        let c = Compiler::new(cl.clone());
        let d = c.compile(&g, Flow::TapaCs { n_fpgas: 2 }).unwrap();
        let rep = d.simulate(&cl).unwrap();
        assert!(rep.makespan_s > 0.0);
        // The pipeline was cut somewhere → network traffic exists.
        assert!(rep.inter_fpga_bytes > 0);
    }

    #[test]
    fn vitis_flow_inserts_no_registers() {
        let g = demo_graph(4, Resources::new(20_000, 40_000, 50, 100, 5));
        let c = Compiler::new(cluster4());
        let d = c.compile(&g, Flow::VitisHls).unwrap();
        assert_eq!(d.pipeline.total_register_bits, 0);
        let t = c.compile(&g, Flow::TapaSingle).unwrap();
        assert!(t.pipeline.total_register_bits > 0);
    }

    #[test]
    fn oversized_single_fpga_rejected_but_two_fpgas_accept() {
        // ~1.3 devices worth of logic.
        let pe = Resources::new(80_000, 160_000, 100, 450, 50);
        let g = demo_graph(14, pe);
        let c = Compiler::new(cluster4());
        assert!(c.compile(&g, Flow::VitisHls).is_err());
        assert!(c.compile(&g, Flow::TapaCs { n_fpgas: 2 }).is_ok());
    }

    #[test]
    fn utilization_includes_platform_and_network() {
        let g = demo_graph(4, Resources::new(20_000, 40_000, 50, 100, 5));
        let c = Compiler::new(cluster4());
        let d = c.compile(&g, Flow::TapaCs { n_fpgas: 2 }).unwrap();
        // Even an FPGA with few tasks shows the shell + AlveoLink floor.
        for u in &d.utilization {
            assert!(u.lut > 0.05, "platform + net IP must show: {u:?}");
        }
        assert!(d.ports_used.iter().any(|&p| p > 0));
    }

    #[test]
    fn channels_rebound_per_fpga() {
        let g = demo_graph(4, Resources::new(20_000, 40_000, 50, 100, 5));
        let c = Compiler::new(cluster4());
        let d = c.compile(&g, Flow::TapaCs { n_fpgas: 2 }).unwrap();
        let total: usize = d.channels_used.iter().sum();
        assert_eq!(total, 2, "one reader + one writer bound somewhere");
    }

    #[test]
    fn flow_labels() {
        assert_eq!(Flow::VitisHls.label(), "F1-V");
        assert_eq!(Flow::TapaSingle.label(), "F1-T");
        assert_eq!(Flow::TapaCs { n_fpgas: 3 }.label(), "F3");
    }
}
