//! Step 6 — interconnect pipelining (§4.6).
//!
//! TAPA-CS *conservatively* pipelines every slot-crossing wire: each FIFO
//! whose endpoints were floorplanned into different slots receives one
//! pipeline register per slot boundary crossed. Because every compute
//! module is an FSM-controlled RTL block, latency-insensitive channels make
//! this safe.
//!
//! To keep throughput intact the added latencies of *reconvergent* paths
//! are then balanced by cut-set pipelining (Parhi's transformation, as used
//! by AutoBridge): along every path between two vertices of the DAG the sum
//! of inserted registers is equalized, so no branch starves its sibling.

use serde::{Deserialize, Serialize};
use tapacs_fpga::SlotId;
use tapacs_graph::{algo, TaskGraph};

/// Where the pipeliner put registers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Pipeline stages inserted per FIFO for slot crossings.
    pub crossing_regs: Vec<u32>,
    /// Extra stages per FIFO added by cut-set balancing.
    pub balancing_regs: Vec<u32>,
    /// Total register bits added (`Σ stages × width`).
    pub total_register_bits: u64,
    /// Whether balancing ran (skipped for cyclic graphs, where the
    /// latency-insensitive protocol alone guarantees correctness).
    pub balanced: bool,
}

impl PipelineReport {
    /// Total added latency (stages) on a FIFO.
    pub fn stages(&self, fifo: usize) -> u32 {
        self.crossing_regs[fifo] + self.balancing_regs[fifo]
    }
}

/// Pipelines all slot crossings and balances reconvergent paths.
///
/// `assignment` maps tasks to FPGAs, `slot_of_task` to slots; only
/// same-FPGA FIFOs receive interconnect registers (cross-FPGA channels are
/// the network's concern).
pub fn pipeline(
    graph: &TaskGraph,
    assignment: &[usize],
    slot_of_task: &[SlotId],
) -> PipelineReport {
    assert_eq!(assignment.len(), graph.num_tasks());
    assert_eq!(slot_of_task.len(), graph.num_tasks());

    let n_fifos = graph.num_fifos();
    let mut crossing = vec![0u32; n_fifos];
    for (id, f) in graph.fifos() {
        if assignment[f.src.index()] == assignment[f.dst.index()] {
            let hops = slot_of_task[f.src.index()].manhattan(&slot_of_task[f.dst.index()]) as u32;
            crossing[id.index()] = hops;
        }
    }

    // Cut-set balancing on the DAG part: for every vertex, all incoming
    // paths must carry the same inserted latency. Compute the longest
    // inserted-latency distance L(v) and top up each edge to close the gap.
    let mut balancing = vec![0u32; n_fifos];
    let balanced = match algo::topo_layers(graph) {
        Ok(layers) => {
            let mut dist = vec![0u32; graph.num_tasks()];
            for layer in &layers {
                for &t in layer {
                    for &fid in graph.in_fifos(t) {
                        let f = graph.fifo(fid);
                        dist[t.index()] =
                            dist[t.index()].max(dist[f.src.index()] + crossing[fid.index()]);
                    }
                }
            }
            for (id, f) in graph.fifos() {
                let need = dist[f.dst.index()] - dist[f.src.index()];
                balancing[id.index()] = need - crossing[id.index()];
            }
            true
        }
        Err(_) => false,
    };

    let total_register_bits = graph
        .fifos()
        .map(|(id, f)| (crossing[id.index()] + balancing[id.index()]) as u64 * f.width_bits as u64)
        .sum();

    PipelineReport {
        crossing_regs: crossing,
        balancing_regs: balancing,
        total_register_bits,
        balanced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_fpga::Resources;
    use tapacs_graph::{Fifo, Task, TaskGraph, TaskId};

    fn t(name: &str) -> Task {
        Task::compute(name, Resources::ZERO)
    }

    #[test]
    fn registers_follow_slot_crossings() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        g.add_fifo(Fifo::new("ab", a, b, 512));
        let slots = vec![SlotId::new(0, 0), SlotId::new(2, 1)];
        let rep = pipeline(&g, &[0, 0], &slots);
        assert_eq!(rep.crossing_regs[0], 3);
        assert_eq!(rep.total_register_bits, 3 * 512);
    }

    #[test]
    fn same_slot_needs_no_registers() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        g.add_fifo(Fifo::new("ab", a, b, 512));
        let rep = pipeline(&g, &[0, 0], &[SlotId::new(1, 0), SlotId::new(1, 0)]);
        assert_eq!(rep.stages(0), 0);
        assert_eq!(rep.total_register_bits, 0);
    }

    #[test]
    fn cross_fpga_fifos_not_pipelined_on_chip() {
        let mut g = TaskGraph::new("p");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        g.add_fifo(Fifo::new("ab", a, b, 512));
        let rep = pipeline(&g, &[0, 1], &[SlotId::new(0, 0), SlotId::new(2, 1)]);
        assert_eq!(rep.crossing_regs[0], 0);
    }

    #[test]
    fn reconvergent_paths_balanced() {
        // a →(0 hops) b →(0) d and a →(3 hops) d: the short path must gain
        // 3 stages so both arrivals at d match.
        let mut g = TaskGraph::new("diamond");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        let d = g.add_task(t("d"));
        let ab = g.add_fifo(Fifo::new("ab", a, b, 64));
        let bd = g.add_fifo(Fifo::new("bd", b, d, 64));
        let ad = g.add_fifo(Fifo::new("ad", a, d, 64));
        let slots = vec![SlotId::new(0, 0), SlotId::new(0, 0), SlotId::new(2, 1)];
        let rep = pipeline(&g, &[0; 3], &slots);
        // ab: 0 hops, bd: 3 hops, ad: 3 hops → no balancing needed on ad,
        // ab gets 0 (dist(b) = 0), path sums: ab+bd = 3, ad = 3. Balanced.
        let path1 = rep.stages(ab.index()) + rep.stages(bd.index());
        let path2 = rep.stages(ad.index());
        assert_eq!(path1, path2);
        assert!(rep.balanced);
    }

    #[test]
    fn unequal_diamond_gets_balancing_registers() {
        // a → b → d (b in far slot) and a → d direct (same slot as a and d):
        // the direct edge must be padded.
        let mut g = TaskGraph::new("diamond2");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        let d = g.add_task(t("d"));
        let ab = g.add_fifo(Fifo::new("ab", a, b, 64));
        let bd = g.add_fifo(Fifo::new("bd", b, d, 64));
        let ad = g.add_fifo(Fifo::new("ad", a, d, 64));
        let slots = vec![SlotId::new(0, 0), SlotId::new(2, 0), SlotId::new(0, 0)];
        let rep = pipeline(&g, &[0; 3], &slots);
        assert_eq!(rep.stages(ab.index()), 2);
        assert_eq!(rep.stages(bd.index()), 2);
        assert_eq!(rep.stages(ad.index()), 4, "direct edge padded to match");
        // Path-sum invariant.
        assert_eq!(rep.stages(ab.index()) + rep.stages(bd.index()), rep.stages(ad.index()));
    }

    #[test]
    fn cyclic_graph_skips_balancing() {
        let mut g = TaskGraph::new("cycle");
        let a = g.add_task(t("a"));
        let b = g.add_task(t("b"));
        g.add_fifo(Fifo::new("ab", a, b, 64));
        g.add_fifo(Fifo::new("ba", b, a, 64));
        let rep = pipeline(&g, &[0, 0], &[SlotId::new(0, 0), SlotId::new(1, 0)]);
        assert!(!rep.balanced);
        // Crossing registers still inserted (latency-insensitive safety).
        assert_eq!(rep.crossing_regs, vec![1, 1]);
        assert_eq!(rep.balancing_regs, vec![0, 0]);
    }

    #[test]
    fn path_sums_equal_for_all_paths_property() {
        // Random-ish DAG: verify L(u) + stages(e) == L(v) for every edge,
        // which implies all path sums between any two vertices are equal.
        let mut g = TaskGraph::new("dag");
        let ids: Vec<TaskId> = (0..8).map(|i| g.add_task(t(&format!("t{i}")))).collect();
        let edges =
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (5, 6), (4, 7), (6, 7), (0, 7)];
        for (i, &(a, b)) in edges.iter().enumerate() {
            g.add_fifo(Fifo::new(format!("e{i}"), ids[a], ids[b], 32));
        }
        let slots: Vec<SlotId> = (0..8).map(|i| SlotId::new(i % 3, i % 2)).collect();
        let rep = pipeline(&g, &[0; 8], &slots);
        // Recompute L from the report and check the invariant.
        let layers = algo::topo_layers(&g).unwrap();
        let mut dist = [0u32; 8];
        for layer in &layers {
            for &v in layer {
                for &fid in g.in_fifos(v) {
                    let f = g.fifo(fid);
                    dist[v.index()] =
                        dist[v.index()].max(dist[f.src.index()] + rep.stages(fid.index()));
                }
            }
        }
        for (fid, f) in g.fifos() {
            assert_eq!(
                dist[f.src.index()] + rep.stages(fid.index()),
                dist[f.dst.index()],
                "edge {} violates the balance invariant",
                f.name
            );
        }
    }
}
