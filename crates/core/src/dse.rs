//! Design-space exploration over the batch engine.
//!
//! TAPA-CS's headline argument is that coarse-grained floorplanning is
//! cheap enough to *search*: instead of compiling one configuration, sweep
//! the cluster shape (how many FPGAs to span) and the partition/floorplan
//! utilization thresholds, score every point, and keep the Pareto-optimal
//! trade-offs between achieved frequency, utilization slack and inter-FPGA
//! cut. This module is that sweep:
//!
//! * [`DseConfig`] enumerates a deterministic grid of
//!   (cluster shape × partition threshold × slot threshold) points over one
//!   design;
//! * [`explore`] compiles the whole grid as **one**
//!   [`BatchCompiler`] sweep — the points share the
//!   process-wide solve cache (structurally identical bisection ILPs across
//!   threshold points answer instantly) and fill the machine's cores;
//! * every point is scored ([`DseScore`]): estimated design frequency
//!   (maximize), utilization slack (maximize) and inter-FPGA cut width
//!   (minimize); points that fail to compile (e.g. a threshold too tight
//!   for the design) stay in the report as failures, not aborts;
//! * [`pareto_frontier`] prunes the evaluated points to the non-dominated
//!   set, with dominated-point accounting in the [`DseReport`].
//!
//! The frontier is **deterministic**: batch compilation is bit-identical
//! for every worker count, domination compares exact `f64`s, and the
//! report's [signature](DseReport::frontier_signature) is invariant under
//! grid enumeration order — the property suite pins all three, and
//! `reproduce dse` additionally proves bit-identical frontiers across a
//! cold and a disk-warm ([`tapacs_ilp::SolveCache::load_from`]) run.

use std::fmt::Write as _;
use std::time::Duration;

use tapacs_graph::TaskGraph;
use tapacs_ilp::CacheStats;
use tapacs_net::Cluster;

use crate::batch::{BatchCompiler, BatchReport, CompileJob};
use crate::compiler::{CompiledDesign, CompilerConfig, Flow};

pub mod search;

/// One grid point of the exploration: a cluster shape plus the two
/// utilization thresholds the paper's floorplanners are most sensitive to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsePoint {
    /// FPGAs the design spans (`1` compiles as the single-FPGA TAPA flow).
    pub n_fpgas: usize,
    /// Per-resource threshold `T` of the inter-FPGA partitioner
    /// (equation 1); also applied as the single-FPGA fit threshold so the
    /// axis stays meaningful at shape 1.
    pub partition_threshold: f64,
    /// Per-slot ceiling of the intra-FPGA floorplanner (equation 4).
    pub slot_threshold: f64,
}

impl DsePoint {
    /// Stable display label, unique per grid point.
    pub fn label(&self) -> String {
        format!("F{}/T{:.3}/S{:.3}", self.n_fpgas, self.partition_threshold, self.slot_threshold)
    }

    /// The flow this point compiles under.
    pub fn flow(&self) -> Flow {
        if self.n_fpgas <= 1 {
            Flow::TapaSingle
        } else {
            Flow::TapaCs { n_fpgas: self.n_fpgas }
        }
    }
}

/// The exploration grid over one design.
#[derive(Debug, Clone)]
pub struct DseConfig {
    /// Sweep label used in reports.
    pub name: String,
    /// The design explored (one graph, many configurations).
    pub graph: TaskGraph,
    /// The cluster compiled against; shapes span its first `n` FPGAs.
    pub cluster: Cluster,
    /// Cluster shapes (FPGAs spanned) to sweep.
    pub cluster_shapes: Vec<usize>,
    /// Partition-threshold axis.
    pub partition_thresholds: Vec<f64>,
    /// Slot-threshold axis.
    pub slot_thresholds: Vec<f64>,
    /// Base compiler configuration every point starts from (per-point
    /// thresholds are overlaid on a clone).
    pub base: CompilerConfig,
    /// Batch worker-thread count (`0` = `TAPACS_BATCH_THREADS` / all
    /// cores, the [`BatchCompiler`] default).
    pub threads: usize,
}

impl DseConfig {
    /// A sweep over `graph` on `cluster` with the default grid: shapes
    /// 1/2/4 (clamped to the cluster), thresholds 0.6/0.7/0.8, slot
    /// ceilings 0.8/0.9.
    pub fn new(name: impl Into<String>, graph: TaskGraph, cluster: Cluster) -> Self {
        let max = cluster.total_fpgas();
        Self {
            name: name.into(),
            graph,
            cluster,
            cluster_shapes: [1usize, 2, 4].iter().copied().filter(|&n| n <= max).collect(),
            partition_thresholds: vec![0.6, 0.7, 0.8],
            slot_thresholds: vec![0.8, 0.9],
            base: CompilerConfig::default(),
            threads: 0,
        }
    }

    /// Grid cardinality (`shapes × partition thresholds × slot
    /// thresholds`) without enumerating anything.
    pub fn num_points(&self) -> usize {
        self.cluster_shapes.len() * self.partition_thresholds.len() * self.slot_thresholds.len()
    }

    /// The grid point at `index` in the deterministic enumeration order
    /// (shape-major, then partition threshold, then slot threshold — the
    /// axis order of the config), computed in O(1) from index arithmetic.
    /// `None` past the end.
    pub fn point(&self, index: usize) -> Option<DsePoint> {
        if index >= self.num_points() {
            return None;
        }
        let slots = self.slot_thresholds.len();
        let parts = self.partition_thresholds.len();
        Some(DsePoint {
            n_fpgas: self.cluster_shapes[index / (parts * slots)],
            partition_threshold: self.partition_thresholds[(index / slots) % parts],
            slot_threshold: self.slot_thresholds[index % slots],
        })
    }

    /// The grid, enumerated deterministically as a **lazy** exact-size
    /// iterator: points are materialized one at a time from
    /// [`point`](Self::point), so million-point spaces cost nothing to
    /// walk and nothing to skip through — the adaptive search
    /// ([`search`]) never holds more than one rung's survivors in memory.
    pub fn points(&self) -> GridPoints<'_> {
        GridPoints { cfg: self, next: 0, total: self.num_points() }
    }

    /// The compiler configuration of one grid point: the base config with
    /// the point's thresholds overlaid.
    pub fn config_for(&self, point: &DsePoint) -> CompilerConfig {
        let mut cfg = self.base.clone();
        cfg.partition.threshold = point.partition_threshold;
        cfg.single_fpga_threshold = point.partition_threshold;
        cfg.floorplan.slot_threshold = point.slot_threshold;
        cfg
    }
}

/// Lazy iterator over a [`DseConfig`] grid; see [`DseConfig::points`].
#[derive(Debug, Clone)]
pub struct GridPoints<'a> {
    cfg: &'a DseConfig,
    next: usize,
    total: usize,
}

impl Iterator for GridPoints<'_> {
    type Item = DsePoint;

    fn next(&mut self) -> Option<DsePoint> {
        if self.next >= self.total {
            return None;
        }
        let p = self.cfg.point(self.next).expect("index below num_points");
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.total - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for GridPoints<'_> {}

/// The three exploration objectives of one compiled point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseScore {
    /// Estimated design frequency in MHz (slowest FPGA) — maximize.
    pub freq_mhz: f64,
    /// Utilization slack: `1 −` the binding per-resource fraction of the
    /// most loaded FPGA — maximize (negative means over-subscribed).
    pub util_slack: f64,
    /// Total FIFO bit-width crossing FPGA boundaries — minimize.
    pub cut_width_bits: u64,
}

impl DseScore {
    /// Scores a compiled design.
    pub fn of(design: &CompiledDesign) -> Self {
        let peak = design.utilization.iter().map(|u| u.max()).fold(0.0f64, f64::max);
        Self {
            freq_mhz: design.design_freq_mhz(),
            util_slack: 1.0 - peak,
            cut_width_bits: design.partition.cut_width_bits,
        }
    }

    /// Pareto domination: at least as good on every objective and strictly
    /// better on at least one. Exact comparisons — scores come from
    /// bit-identical deterministic compiles, so no tolerance is wanted.
    pub fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.freq_mhz >= other.freq_mhz
            && self.util_slack >= other.util_slack
            && self.cut_width_bits <= other.cut_width_bits;
        let better = self.freq_mhz > other.freq_mhz
            || self.util_slack > other.util_slack
            || self.cut_width_bits < other.cut_width_bits;
        no_worse && better
    }
}

/// Indices of the non-dominated points among `scores`, ascending. `None`
/// entries (failed compiles) never join the frontier and never dominate.
///
/// Two points with identical scores dominate neither, so ties coexist on
/// the frontier; the result is invariant under permutation of the input
/// (modulo the index relabeling the permutation itself implies).
pub fn pareto_frontier(scores: &[Option<DseScore>]) -> Vec<usize> {
    (0..scores.len())
        .filter(|&i| match scores[i] {
            None => false,
            Some(si) => !scores.iter().flatten().any(|sj| sj.dominates(&si)),
        })
        .collect()
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The grid point.
    pub point: DsePoint,
    /// Its score, when the point compiled.
    pub score: Option<DseScore>,
    /// Whether the compiled design is degraded (heuristic fallback after a
    /// solver timeout). Degraded points keep their score in the report but
    /// are deterministically excluded from the Pareto frontier: a
    /// non-proven score must not displace a clean one.
    pub degraded: bool,
    /// Whether a per-job compile budget cut the point off before it could
    /// finish cleanly (see [`crate::batch::CompileJob::budget`]; implies
    /// [`degraded`](Self::degraded)). The adaptive search treats such
    /// points as *unfinished* — never promoted by score, but eligible to
    /// resume at the next rung's larger budget.
    pub budget_expired: bool,
    /// The compile error, when it did not.
    pub error: Option<String>,
    /// Compile wall-clock of this point inside the batch.
    pub wall: Duration,
}

/// Outcome of one [`explore`] sweep.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// The sweep's label.
    pub name: String,
    /// Every evaluated point, in grid order.
    pub outcomes: Vec<DseOutcome>,
    /// Indices into [`outcomes`](Self::outcomes) forming the Pareto
    /// frontier, ascending.
    pub frontier: Vec<usize>,
    /// Worker threads the batch queue used.
    pub threads: usize,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Solve-cache lookups during the sweep (cross-point and — after a
    /// [`load_from`](tapacs_ilp::SolveCache::load_from) — cross-process
    /// hits show up here).
    pub cache: CacheStats,
}

impl DseReport {
    /// Points that compiled cleanly and were pruned as dominated.
    pub fn dominated(&self) -> usize {
        self.succeeded() - self.degraded() - self.frontier.len()
    }

    /// Points that compiled.
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.score.is_some()).count()
    }

    /// Points that compiled degraded (excluded from the frontier).
    pub fn degraded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.score.is_some() && o.degraded).count()
    }

    /// Points that failed to compile (kept in the report, not aborted).
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.succeeded()
    }

    /// Canonical bit-exact encoding of the frontier: one
    /// `label=freq-bits/slack-bits/cut` token per frontier point, sorted
    /// by label so the signature is invariant under grid enumeration
    /// order. Two runs produced bit-identical frontiers iff their
    /// signatures are equal.
    pub fn frontier_signature(&self) -> String {
        let mut tokens: Vec<String> = self
            .frontier
            .iter()
            .map(|&i| {
                let o = &self.outcomes[i];
                let s = o.score.expect("frontier points are scored");
                format!(
                    "{}={:016x}/{:016x}/{}",
                    o.point.label(),
                    s.freq_mhz.to_bits(),
                    s.util_slack.to_bits(),
                    s.cut_width_bits
                )
            })
            .collect();
        tokens.sort_unstable();
        tokens.join(";")
    }

    /// The one-line sweep header shared by [`Self::render_table`] and
    /// [`Self::render_summary`].
    fn render_header(&self) -> String {
        format!(
            "DSE sweep `{}`: {} point(s) on {} thread(s) in {:.3}s\n",
            self.name,
            self.outcomes.len(),
            self.threads,
            self.wall.as_secs_f64()
        )
    }

    /// The accounting tail shared by [`Self::render_table`] and
    /// [`Self::render_summary`].
    fn render_accounting(&self) -> String {
        format!(
            "frontier: {} point(s), {} dominated, {} degraded, {} failed; solve cache {} hits / {} misses ({:.0}% hit rate)\n",
            self.frontier.len(),
            self.dominated(),
            self.degraded(),
            self.failed(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
        )
    }

    /// Compact ASCII rendering for wide grids: the sweep header, the
    /// number of *distinct* frontier score tuples (wide generated grids
    /// tie heavily, so per-point rows carry little information), and the
    /// accounting summary — no per-point rows.
    pub fn render_summary(&self) -> String {
        let mut s = self.render_header();
        let mut tuples: Vec<(u64, u64, u64)> = self
            .frontier
            .iter()
            .filter_map(|&i| self.outcomes[i].score)
            .map(|sc| (sc.freq_mhz.to_bits(), sc.util_slack.to_bits(), sc.cut_width_bits))
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        let _ = writeln!(s, "  distinct frontier score tuples: {}", tuples.len());
        s.push_str(&self.render_accounting());
        s
    }

    /// ASCII rendering: one row per point (frontier rows marked `*`), then
    /// the accounting summary.
    pub fn render_table(&self) -> String {
        let mut s = self.render_header();
        s.push_str("  point                 freq(MHz)  slack   cut(bits)  outcome\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let mark = if self.frontier.contains(&i) { '*' } else { ' ' };
            match (&o.score, &o.error) {
                (Some(score), _) => {
                    let outcome = if self.frontier.contains(&i) {
                        "frontier"
                    } else if o.degraded {
                        "degraded"
                    } else {
                        "dominated"
                    };
                    let _ = writeln!(
                        s,
                        "{mark} {:<21} {:<10.0} {:<7.3} {:<10} {}",
                        o.point.label(),
                        score.freq_mhz,
                        score.util_slack,
                        score.cut_width_bits,
                        outcome
                    );
                }
                (None, err) => {
                    let _ = writeln!(
                        s,
                        "{mark} {:<21} {:<10} {:<7} {:<10} failed: {}",
                        o.point.label(),
                        "-",
                        "-",
                        "-",
                        err.as_deref().unwrap_or("unknown")
                    );
                }
            }
        }
        s.push_str(&self.render_accounting());
        s
    }
}

/// Compiles a set of grid points (by grid index) as one shared batch
/// sweep, optionally bounding every job by `budget`. Returns outcomes in
/// the order of `indices` plus the raw [`BatchReport`]. Shared by the
/// exhaustive [`explore`] (all points, no budget) and the adaptive
/// [`search`] rungs (survivors only, rung budget).
pub(crate) fn compile_indexed(
    config: &DseConfig,
    indices: &[usize],
    budget: Option<Duration>,
) -> (Vec<DseOutcome>, BatchReport) {
    let points: Vec<DsePoint> =
        indices.iter().map(|&i| config.point(i).expect("grid index in range")).collect();
    let jobs: Vec<CompileJob> = points
        .iter()
        .map(|p| {
            let job = CompileJob::new(p.label(), config.graph.clone(), p.flow())
                .with_config(config.config_for(p));
            match budget {
                Some(b) => job.with_budget(b),
                None => job,
            }
        })
        .collect();
    let outcome = BatchCompiler::with_config(config.cluster.clone(), config.base.clone())
        .threads(config.threads)
        .compile(jobs);

    let outcomes: Vec<DseOutcome> = points
        .into_iter()
        .zip(&outcome.results)
        .zip(&outcome.report.jobs)
        .map(|((point, result), job)| match result {
            Ok(design) => DseOutcome {
                point,
                score: Some(DseScore::of(design)),
                degraded: design.degraded,
                budget_expired: job.budget_expired,
                error: None,
                wall: job.wall,
            },
            Err(e) => DseOutcome {
                point,
                score: None,
                degraded: false,
                budget_expired: job.budget_expired,
                error: Some(e.to_string()),
                wall: job.wall,
            },
        })
        .collect();
    (outcomes, outcome.report)
}

/// Builds a [`DseReport`] from evaluated outcomes: computes the frontier
/// with degraded points masked out (they neither join it nor dominate).
pub(crate) fn report_from_outcomes(
    name: String,
    outcomes: Vec<DseOutcome>,
    threads: usize,
    wall: Duration,
    cache: CacheStats,
) -> DseReport {
    // Degraded points are masked out of the frontier computation entirely:
    // they neither join it nor dominate a clean point (their scores are
    // heuristic incumbents, not the solver's answer).
    let scores: Vec<Option<DseScore>> =
        outcomes.iter().map(|o| if o.degraded { None } else { o.score }).collect();
    let frontier = pareto_frontier(&scores);
    DseReport { name, outcomes, frontier, threads, wall, cache }
}

/// Compiles every grid point of `config` as one shared batch sweep, scores
/// the results and prunes to the Pareto frontier. Failing points occupy
/// their own outcome slot; the sweep never aborts.
pub fn explore(config: &DseConfig) -> DseReport {
    let indices: Vec<usize> = (0..config.num_points()).collect();
    let (outcomes, report) = compile_indexed(config, &indices, None);
    report_from_outcomes(config.name.clone(), outcomes, report.threads, report.wall, report.cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapacs_fpga::Device;
    use tapacs_net::Topology;

    fn score(freq: f64, slack: f64, cut: u64) -> Option<DseScore> {
        Some(DseScore { freq_mhz: freq, util_slack: slack, cut_width_bits: cut })
    }

    #[test]
    fn domination_needs_a_strict_edge() {
        let a = DseScore { freq_mhz: 300.0, util_slack: 0.2, cut_width_bits: 512 };
        assert!(!a.dominates(&a), "a point never dominates itself");
        let faster = DseScore { freq_mhz: 320.0, ..a };
        assert!(faster.dominates(&a));
        assert!(!a.dominates(&faster));
        let trade = DseScore { freq_mhz: 320.0, util_slack: 0.1, cut_width_bits: 512 };
        assert!(!trade.dominates(&a) && !a.dominates(&trade), "trade-offs coexist");
    }

    #[test]
    fn frontier_prunes_dominated_and_skips_failures() {
        let scores = vec![
            score(300.0, 0.2, 512), // dominated by 3
            None,                   // failed point
            score(250.0, 0.3, 0),   // frontier (best cut/slack)
            score(310.0, 0.2, 512), // frontier (best freq)
            score(310.0, 0.2, 512), // exact tie with 3 → also frontier
        ];
        assert_eq!(pareto_frontier(&scores), vec![2, 3, 4]);
        assert_eq!(pareto_frontier(&[]), Vec::<usize>::new());
        assert_eq!(pareto_frontier(&[None, None]), Vec::<usize>::new());
    }

    /// Grid enumeration and config overlay never compile, so an empty
    /// graph suffices (the end-to-end `explore` coverage lives in
    /// `tests/dse_props.rs`, which owns the shared compile fixture).
    #[test]
    fn grid_enumeration_is_shape_major_and_sized() {
        let cluster = Cluster::single_node(Device::u55c(), 4, Topology::Ring);
        let mut cfg = DseConfig::new("unit", TaskGraph::new("empty"), cluster);
        cfg.cluster_shapes = vec![1, 2];
        cfg.partition_thresholds = vec![0.7, 0.9];
        cfg.slot_thresholds = vec![0.9];
        assert_eq!(cfg.num_points(), 4);
        assert_eq!(cfg.points().len(), 4, "exact-size iterator");
        let points: Vec<DsePoint> = cfg.points().collect();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label(), "F1/T0.700/S0.900");
        assert_eq!(points[0].flow(), Flow::TapaSingle);
        assert_eq!(points[3].label(), "F2/T0.900/S0.900");
        assert_eq!(points[3].flow(), Flow::TapaCs { n_fpgas: 2 });
        // Random access agrees with the iterator at every index.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(cfg.point(i).unwrap(), *p);
        }
        assert_eq!(cfg.point(4), None);
        let c = cfg.config_for(&points[1]);
        assert_eq!(c.partition.threshold, 0.9);
        assert_eq!(c.single_fpga_threshold, 0.9);
        assert_eq!(c.floorplan.slot_threshold, 0.9);
    }

    /// The iterator is lazy: a grid far beyond any allocatable size can be
    /// constructed, sized and sampled without materializing anything.
    #[test]
    fn huge_grids_enumerate_lazily() {
        let cluster = Cluster::single_node(Device::u55c(), 4, Topology::Ring);
        let mut cfg = DseConfig::new("huge", TaskGraph::new("empty"), cluster);
        cfg.cluster_shapes = (1..=4).cycle().take(1_000).collect();
        cfg.partition_thresholds = (0..1_000).map(|i| 0.5 + i as f64 * 1e-4).collect();
        cfg.slot_thresholds = (0..1_000).map(|i| 0.5 + i as f64 * 1e-4).collect();
        assert_eq!(cfg.num_points(), 1_000_000_000);
        let mut it = cfg.points();
        assert_eq!(it.len(), 1_000_000_000);
        let first = it.next().unwrap();
        assert_eq!(first, cfg.point(0).unwrap());
        // A far-out index is O(1), no walk required.
        let far = cfg.point(999_999_999).unwrap();
        assert_eq!(far.n_fpgas, 4);
    }

    #[test]
    fn default_grid_clamps_shapes_to_the_cluster() {
        let two = Cluster::single_node(Device::u55c(), 2, Topology::Ring);
        let cfg = DseConfig::new("clamp", TaskGraph::new("empty"), two);
        assert_eq!(cfg.cluster_shapes, vec![1, 2], "shape 4 exceeds the cluster");
    }
}
