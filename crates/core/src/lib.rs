//! The TAPA-CS compiler: automatic multi-FPGA partitioning, two-level
//! floorplanning and interconnect pipelining (§4 of the paper).
//!
//! The seven key steps (Figure 5) map onto this crate as:
//!
//! 1. **Task graph construction** — callers build a
//!    [`tapacs_graph::TaskGraph`] (the [`tapacs_apps`-style] builders do
//!    this for the paper's benchmarks).
//! 2. **Task extraction & parallel synthesis** — [`estimate`] provides
//!    per-module resource profiles when the app does not carry measured
//!    ones.
//! 3. **Inter-FPGA floorplanning** — [`partition`]: an ILP over the cluster
//!    topology minimizing `Σ e.width × dist(F_i,F_j) × λ` under per-resource
//!    thresholds (equations 1–2), with multilevel coarsening + refinement
//!    for large designs.
//! 4. **Inter-FPGA communication logic insertion** — [`comm`]: cut FIFOs
//!    are split through AlveoLink send/recv endpoint tasks and the per-port
//!    IP overhead is charged to each FPGA.
//! 5. **Intra-FPGA floorplanning** — [`floorplan`]: recursive two-way ILP
//!    partitioning of each FPGA's slot grid (equation 4), HBM readers
//!    pinned to the bottom die, network endpoints to the QSFP die.
//! 6. **Interconnect pipelining** — [`pipeline`]: registers on every
//!    slot-crossing wire plus cut-set latency balancing of reconvergent
//!    paths (§4.6).
//! 7. **Bitstream generation** — [`pnr`]: the *virtual place-and-route*
//!    computes slot congestion and net delays and closes timing, yielding
//!    the achieved frequency per FPGA.
//!
//! [`Compiler`] orchestrates all of it for the three flows compared in the
//! evaluation: `F1-V` (Vitis-like: no floorplanning, no pipelining),
//! `F1-T` (TAPA/AutoBridge single FPGA) and `F2..F8` (TAPA-CS multi-FPGA).
//! It does so as an explicit [`stage`]d pipeline — per-stage wall-clock,
//! error attribution and stage overrides via
//! [`Compiler::compile_staged`] — and whole evaluation sweeps run as one
//! sharded work queue through [`batch::BatchCompiler`].
//!
//! [`tapacs_apps`-style]: crate

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod comm;
pub mod compiler;
pub mod dse;
pub mod estimate;
pub mod floorplan;
pub mod partition;
pub mod pipeline;
pub mod pnr;
pub mod report;
pub mod stage;

mod error;

pub use batch::{BatchCompiler, BatchOutcome, BatchReport, CompileJob, JobReport, StageTotal};
pub use compiler::{CompiledDesign, Compiler, CompilerConfig, Flow};
pub use dse::search::{explore_adaptive, explore_adaptive_with, SearchConfig, SearchReport};
pub use dse::{DseConfig, DseOutcome, DsePoint, DseReport, DseScore};
pub use error::CompileError;
pub use partition::{InterPartition, PartitionConfig};
pub use report::{FrequencySummary, LevelSolveStats, SolverActivityReport, UtilizationReport};
pub use stage::{CompileContext, CompileOverrides, Stage, StageFailure, StageTiming};
pub use tapacs_ilp::{SolverBackend, SolverOptions};
