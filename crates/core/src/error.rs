use std::fmt;

use tapacs_graph::GraphError;

use crate::stage::Stage;

/// Errors surfaced by the compiler pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input graph is structurally invalid.
    Graph(GraphError),
    /// No feasible assignment exists under the resource thresholds — the
    /// design needs more FPGAs (the paper's "cannot be routed on a single
    /// device").
    InsufficientResources {
        /// Human-readable description of the binding constraint.
        detail: String,
    },
    /// Virtual place-and-route failed: some slot is oversubscribed past the
    /// routable limit (the paper's "failure in the routing phase").
    RoutingFailure {
        /// FPGA index.
        fpga: usize,
        /// Worst slot utilization found.
        worst_utilization: f64,
    },
    /// The ILP solver could not find any feasible point in budget.
    Solver(String),
    /// The flow requests more FPGAs than the bound cluster provides (or
    /// zero). Batch jobs must fail per-job on this instead of aborting the
    /// whole queue, so it is an error, not a panic.
    ClusterTooSmall {
        /// FPGAs the flow needs.
        needed: usize,
        /// FPGAs the cluster has.
        available: usize,
    },
    /// The job's compile panicked inside a batch worker. The panic was
    /// caught at the job boundary ([`crate::BatchCompiler`] isolates it),
    /// so the rest of the sweep completed; this variant carries what is
    /// known about the fault for the failed slot.
    WorkerPanicked {
        /// The pipeline stage that was executing when the panic unwound,
        /// when the stage marker was set (a panic before the first stage
        /// has none).
        stage: Option<Stage>,
        /// The panic payload, when it was a string (the usual case).
        payload: String,
    },
    /// A caller-supplied stage override is inconsistent with the job —
    /// e.g. a seeded partition whose assignment does not cover the graph
    /// or names an FPGA the flow does not span. Checked up front so batch
    /// jobs fail per-job instead of panicking deep in the pipeline.
    InvalidOverride {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "invalid task graph: {e}"),
            CompileError::InsufficientResources { detail } => {
                write!(f, "design does not fit: {detail}")
            }
            CompileError::RoutingFailure { fpga, worst_utilization } => write!(
                f,
                "routing failure on FPGA {fpga}: slot utilization {:.1}% exceeds the routable limit",
                worst_utilization * 100.0
            ),
            CompileError::Solver(msg) => write!(f, "ILP solver: {msg}"),
            CompileError::ClusterTooSmall { needed, available } => {
                write!(f, "flow needs {needed} FPGA(s), cluster has {available}")
            }
            CompileError::WorkerPanicked { stage, payload } => match stage {
                Some(stage) => write!(f, "worker panicked during {stage}: {payload}"),
                None => write!(f, "worker panicked: {payload}"),
            },
            CompileError::InvalidOverride { detail } => {
                write!(f, "invalid stage override: {detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}
