//! Step 2 — "task extraction and parallel synthesis" (§4.2).
//!
//! The real tool synthesizes every task in parallel to obtain an accurate
//! resource-utilization profile before floorplanning. Without an HLS
//! backend, this module provides first-order estimators calibrated against
//! typical Vitis HLS synthesis results; the benchmark builders in
//! `tapacs-apps` use them for their modules.

use tapacs_fpga::Resources;

/// Bits stored by one BRAM36 block.
const BRAM_BITS: u64 = 36 * 1024;

/// A pass-through / stream-routing module: mostly FIFO glue scaling with
/// port width.
pub fn stream_module(width_bits: u32) -> Resources {
    let w = width_bits as u64;
    Resources::new(120 + w / 2, 260 + w, w.div_ceil(512), 0, 0)
}

/// An external-memory port module: AXI adapters plus the on-chip reuse
/// buffer (BRAM for small buffers, URAM past 288 Kb).
pub fn hbm_port_module(width_bits: u32, buffer_bytes: u64) -> Resources {
    let w = width_bits as u64;
    let bits = buffer_bytes * 8;
    let (bram, uram) = if bits > 8 * BRAM_BITS {
        // Large buffers promote to URAM (288 Kb each).
        (4, bits.div_ceil(288 * 1024))
    } else {
        (bits.div_ceil(BRAM_BITS).max(1), 0)
    };
    Resources::new(1_800 + 2 * w, 3_400 + 4 * w, bram, 0, uram)
}

/// An arithmetic processing element: `dsps` multiply-accumulate slices plus
/// proportional control fabric.
pub fn pe_module(dsps: u64) -> Resources {
    Resources::new(900 + 450 * dsps, 1_600 + 700 * dsps, 2 + dsps / 4, dsps, 0)
}

/// A comparison/sort style element (no DSPs, LUT-heavy).
pub fn sort_module(parallel_lanes: u64) -> Resources {
    Resources::new(1_200 + 800 * parallel_lanes, 1_900 + 950 * parallel_lanes, 2, 0, 0)
}

/// A lightweight controller / accumulator module.
pub fn control_module() -> Resources {
    Resources::new(2_400, 3_800, 4, 2, 0)
}

/// An AlveoLink send/recv endpoint's *kernel-side* adapter (the networking
/// IP itself is charged per port by the comm-insertion step).
pub fn net_endpoint_module(width_bits: u32) -> Resources {
    let w = width_bits as u64;
    Resources::new(650 + w, 1_200 + 2 * w, 4 + w.div_ceil(256), 0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_streams_cost_more() {
        assert!(stream_module(512).lut > stream_module(64).lut);
        assert!(stream_module(512).bram >= 1);
    }

    #[test]
    fn buffers_grow_bram_then_uram() {
        let small = hbm_port_module(512, 32 * 1024); // 256 Kb → BRAM
        let large = hbm_port_module(512, 128 * 1024); // 1 Mb → URAM
        assert!(small.bram > 0 && small.uram == 0);
        assert!(large.uram > 0);
    }

    #[test]
    fn pe_scales_with_dsps() {
        let small = pe_module(4);
        let big = pe_module(16);
        assert_eq!(big.dsp, 16);
        assert!(big.lut > small.lut);
    }

    #[test]
    fn section3_knn_configs_differ_materially() {
        // The §3 story: the 512-bit/128 KB configuration is much heavier in
        // the bottom die than 256-bit/32 KB — our estimators must reflect
        // that (it is why the single-FPGA design fails routing).
        let narrow = hbm_port_module(256, 32 * 1024);
        let wide = hbm_port_module(512, 128 * 1024);
        assert!(wide.lut > narrow.lut);
        assert!(wide.uram > narrow.uram);
    }
}
