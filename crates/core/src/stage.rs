//! The staged compile pipeline: named stages, per-stage wall-clock and
//! error attribution.
//!
//! [`Compiler::compile`](crate::Compiler::compile) used to be a monolithic
//! function: one opaque `Result` out, no way to see *where* the time went
//! or *which* step rejected a design. The staged pipeline splits it into
//! the paper's explicit steps ([`Stage`]) and threads every intermediate
//! artifact through a [`CompileContext`]:
//!
//! * each stage records its wall-clock ([`StageTiming`]),
//! * a failing stage is attributed by name ([`StageFailure`]) and every
//!   artifact produced *before* it stays inspectable on the context,
//! * callers can override individual stages ([`CompileOverrides`]) — seed a
//!   precomputed partition, force the naive floorplanner, or toggle
//!   interconnect pipelining independently of the flow — which is what the
//!   `reproduce ablation` experiment is built on.
//!
//! The batch engine ([`crate::batch`]) runs one context per job and folds
//! the stage timings into its aggregated report.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use tapacs_fpga::Utilization;

use crate::comm::CommInsertion;
use crate::compiler::{CompiledDesign, Flow};
use crate::error::CompileError;
use crate::floorplan::Floorplan;
use crate::partition::InterPartition;
use crate::pipeline::PipelineReport;
use crate::pnr::TimingReport;

/// One named stage of the compile pipeline, in execution order (the
/// paper's Figure 5 steps 3–7 plus input validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Graph validation plus cluster-capacity checks.
    Validate,
    /// Step 3: inter-FPGA floorplanning (the paper's `L1`).
    Partition,
    /// Step 4: communication-logic insertion.
    CommInsert,
    /// Step 5: intra-FPGA floorplanning + HBM channel binding (`L2`).
    Floorplan,
    /// Step 6: interconnect pipelining + cut-set balancing.
    Pipeline,
    /// Step 7: virtual place-and-route timing closure.
    Timing,
    /// Whole-card utilization accounting.
    Utilization,
}

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Validate,
        Stage::Partition,
        Stage::CommInsert,
        Stage::Floorplan,
        Stage::Pipeline,
        Stage::Timing,
        Stage::Utilization,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Validate => "validate",
            Stage::Partition => "partition",
            Stage::CommInsert => "comm-insert",
            Stage::Floorplan => "floorplan",
            Stage::Pipeline => "pipeline",
            Stage::Timing => "timing",
            Stage::Utilization => "utilization",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

thread_local! {
    /// The stage currently executing on this thread, for panic
    /// attribution: the staged driver sets it as it enters each stage, and
    /// the batch engine's `catch_unwind` handler reads it after a panic
    /// unwound past the stage's stack frames (a panicking stage cannot
    /// report itself).
    static CURRENT_STAGE: std::cell::Cell<Option<Stage>> = const { std::cell::Cell::new(None) };
}

/// Marks `stage` (or nothing) as executing on this thread.
pub(crate) fn set_current_stage(stage: Option<Stage>) {
    CURRENT_STAGE.with(|s| s.set(stage));
}

/// The stage executing on this thread, if the staged driver is mid-stage.
pub(crate) fn current_stage() -> Option<Stage> {
    CURRENT_STAGE.with(std::cell::Cell::get)
}

/// Wall-clock of one executed stage. Stages skipped by an override record
/// no timing, so the vector doubles as the list of stages actually run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// The stage that ran.
    pub stage: Stage,
    /// Its wall-clock.
    pub wall: Duration,
}

/// A compile failure attributed to the stage that raised it.
#[derive(Debug, Clone, PartialEq)]
pub struct StageFailure {
    /// The stage that failed.
    pub stage: Stage,
    /// The underlying error.
    pub error: CompileError,
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage {}: {}", self.stage, self.error)
    }
}

impl std::error::Error for StageFailure {}

/// Per-stage overrides: pre-seed an artifact or force a stage variant that
/// the flow would not pick on its own. `Default` overrides nothing.
#[derive(Debug, Clone, Default)]
pub struct CompileOverrides {
    /// Use this inter-FPGA partition instead of running the partitioner
    /// (the [`Stage::Partition`] stage is skipped entirely). The assignment
    /// must cover the input graph.
    pub partition: Option<InterPartition>,
    /// Force the naive first-fit floorplanner (`Some(true)`) or the ILP
    /// floorplanner (`Some(false)`) regardless of the flow.
    pub naive_floorplan: Option<bool>,
    /// Force interconnect pipelining on or off regardless of the flow.
    pub pipelined: Option<bool>,
}

impl CompileOverrides {
    /// True when no stage is overridden (the plain compile path).
    pub fn is_empty(&self) -> bool {
        self.partition.is_none() && self.naive_floorplan.is_none() && self.pipelined.is_none()
    }
}

/// Every artifact the staged pipeline produced, plus timing and failure
/// attribution. On success all artifact fields are populated and
/// [`CompileContext::into_result`] assembles the [`CompiledDesign`]; on
/// failure the fields written *before* the failing stage stay available
/// for inspection.
#[derive(Debug, Clone)]
pub struct CompileContext {
    /// The flow being compiled.
    pub flow: Flow,
    /// Whether slot crossings are pipelined (flow default or override).
    pub pipelined: bool,
    /// Wall-clock per executed stage, in execution order.
    pub timings: Vec<StageTiming>,
    /// The failing stage and its error, if any stage failed.
    pub failure: Option<StageFailure>,
    /// Inter-FPGA partition (after [`Stage::Partition`], or the override).
    pub partition: Option<InterPartition>,
    /// Communication-logic insertion (after [`Stage::CommInsert`]); the
    /// embedded graph carries the rebound HBM channels once
    /// [`Stage::Floorplan`] has run.
    pub comm: Option<CommInsertion>,
    /// Intra-FPGA floorplan (after [`Stage::Floorplan`]).
    pub floorplan: Option<Floorplan>,
    /// Distinct HBM channels bound per FPGA (after [`Stage::Floorplan`]).
    pub channels_used: Option<Vec<usize>>,
    /// Pipelining outcome (after [`Stage::Pipeline`]).
    pub pipeline: Option<PipelineReport>,
    /// Virtual-P&R timing closure (after [`Stage::Timing`]).
    pub timing: Option<TimingReport>,
    /// Whole-card utilization per FPGA (after [`Stage::Utilization`]).
    pub utilization: Option<Vec<Utilization>>,
}

impl CompileContext {
    pub(crate) fn new(flow: Flow, pipelined: bool) -> Self {
        Self {
            flow,
            pipelined,
            timings: Vec::new(),
            failure: None,
            partition: None,
            comm: None,
            floorplan: None,
            channels_used: None,
            pipeline: None,
            timing: None,
            utilization: None,
        }
    }

    /// Records `stage`'s wall-clock.
    pub(crate) fn record(&mut self, stage: Stage, wall: Duration) {
        self.timings.push(StageTiming { stage, wall });
    }

    /// Marks the context failed at `stage` and returns it (for tail
    /// position in the pipeline driver).
    pub(crate) fn failed(mut self, stage: Stage, error: CompileError) -> Self {
        self.failure = Some(StageFailure { stage, error });
        self
    }

    /// The stage that failed, if any.
    pub fn failed_stage(&self) -> Option<Stage> {
        self.failure.as_ref().map(|f| f.stage)
    }

    /// Wall-clock of `stage`, when it ran.
    pub fn stage_wall(&self, stage: Stage) -> Option<Duration> {
        self.timings.iter().find(|t| t.stage == stage).map(|t| t.wall)
    }

    /// Summed wall-clock over every executed stage.
    pub fn total_wall(&self) -> Duration {
        self.timings.iter().map(|t| t.wall).sum()
    }

    /// Consumes the context into the classic compile result: the assembled
    /// [`CompiledDesign`] on success, the failing stage's error otherwise
    /// (use [`CompileContext::failure`] first when the stage name matters).
    ///
    /// # Errors
    ///
    /// The [`CompileError`] of the failing stage.
    pub fn into_result(self) -> Result<CompiledDesign, CompileError> {
        if let Some(failure) = self.failure {
            return Err(failure.error);
        }
        // Invariant: no failure ⇒ every stage ran ⇒ every artifact is set.
        let comm = self.comm.expect("comm-insert artifact missing on success");
        let fp = self.floorplan.expect("floorplan artifact missing on success");
        let timing = self.timing.expect("timing artifact missing on success");
        let partition = self.partition.expect("partition artifact missing on success");
        let degraded = partition.degraded || fp.degraded;
        let placement = tapacs_sim::Placement {
            fpga_of_task: comm.assignment,
            freq_mhz: timing.freq_mhz.clone(),
        };
        Ok(CompiledDesign {
            flow: self.flow,
            graph: comm.graph,
            placement,
            slot_of_task: fp.slot_of_task,
            partition,
            degraded,
            floorplan_runtime: fp.runtime,
            floorplan_stats: fp.solve_stats,
            pipeline: self.pipeline.expect("pipeline artifact missing on success"),
            timing,
            utilization: self.utilization.expect("utilization artifact missing on success"),
            channels_used: self.channels_used.expect("channel binding missing on success"),
            ports_used: comm.ports_used,
            stage_timings: self.timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_names() {
        assert_eq!(Stage::ALL.len(), 7);
        assert!(Stage::Validate < Stage::Partition);
        assert_eq!(Stage::Floorplan.name(), "floorplan");
        assert_eq!(Stage::CommInsert.to_string(), "comm-insert");
    }

    #[test]
    fn failure_display_names_the_stage() {
        let f = StageFailure {
            stage: Stage::Floorplan,
            error: CompileError::InsufficientResources { detail: "x".into() },
        };
        let s = f.to_string();
        assert!(s.contains("floorplan"), "{s}");
        assert!(s.contains("does not fit"), "{s}");
    }

    #[test]
    fn empty_overrides_report_empty() {
        assert!(CompileOverrides::default().is_empty());
        let o = CompileOverrides { pipelined: Some(false), ..Default::default() };
        assert!(!o.is_empty());
    }
}
