//! Partition the same design over all six network topologies (Figure 6)
//! and compare the equation-2 communication cost the ILP achieves.
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use tapa_cs::core::partition::{comm_cost, partition, PartitionConfig};
use tapa_cs::fpga::{Device, Resources};
use tapa_cs::graph::{Fifo, Task, TaskGraph};
use tapa_cs::net::{Cluster, Topology};

fn ring_of_communities() -> TaskGraph {
    // Four communities in a ring — the topology-aware partitioner should
    // map neighbors to adjacent devices.
    let mut g = TaskGraph::new("communities");
    let r = Resources::new(90_000, 170_000, 140, 380, 40);
    let mut first_of = Vec::new();
    let mut last_of = Vec::new();
    for c in 0..4 {
        let mut prev = None;
        for i in 0..4 {
            let t = g.add_task(Task::compute(format!("c{c}_t{i}"), r));
            if let Some(p) = prev {
                g.add_fifo(Fifo::new(format!("c{c}_e{i}"), p, t, 512));
            }
            if i == 0 {
                first_of.push(t);
            }
            prev = Some(t);
        }
        last_of.push(prev.unwrap());
    }
    for c in 0..4 {
        g.add_fifo(Fifo::new(format!("ring{c}"), last_of[c], first_of[(c + 1) % 4], 128));
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = ring_of_communities();
    println!(
        "design: {} tasks, {} fifos; partitioning across 4 U55C cards\n",
        g.num_tasks(),
        g.num_fifos()
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>8}",
        "topology", "diameter", "eq.2 cost", "cut bits", "L1 (s)"
    );
    for topo in Topology::all_for_four() {
        let cluster = Cluster::single_node(Device::u55c(), 4, topo);
        let cfg = PartitionConfig { time_limit_s: 2.0, ..Default::default() };
        let p = partition(&g, &cluster, 4, &cfg)?;
        // Recompute to demonstrate the public cost function.
        let cost = comm_cost(&g, &cluster, &p.assignment);
        println!(
            "{:<14} {:>10} {:>12.0} {:>12} {:>8.2}",
            topo.name(),
            topo.diameter(4),
            cost,
            p.cut_width_bits,
            p.runtime.as_secs_f64(),
        );
    }
    println!("\nlower diameter → lower worst-case dist(Fi,Fj) → cheaper cuts;");
    println!("the ring matches the paper's testbed cabling.");
    Ok(())
}
