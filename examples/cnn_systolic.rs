//! AutoSA-style systolic CNN grids on 1-4 FPGAs (§5.5).
//!
//! Demonstrates which grids route on a single device and which need the
//! TAPA-CS multi-FPGA flow (Table 8's resource wall).
//!
//! ```sh
//! cargo run --release --example cnn_systolic
//! ```

use tapa_cs::apps::cnn::{self, CnnConfig};
use tapa_cs::apps::suite::{paper_cluster, run_flow, suite_compiler};
use tapa_cs::core::Flow;
use tapa_cs::fpga::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional sanity: the systolic evaluation matches direct conv.
    let input: Vec<f32> = (0..256).map(|i| ((i * 37) % 11) as f32 - 5.0).collect();
    let kernel: Vec<f32> = (0..9).map(|i| (i as f32) * 0.25 - 1.0).collect();
    let a = cnn::conv2d_reference(&input, 16, &kernel, 3);
    let b = cnn::conv2d_systolic(&input, 16, &kernel, 3);
    let err: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max);
    println!("systolic vs reference conv: max abs error {err:.2e}\n");

    let device = Device::u55c();
    println!(
        "{:<8} {:>5} {:>8} {:>9} {:>10} {:>10}",
        "grid", "PEs", "DSP %", "fits 1?", "flow", "latency"
    );
    for (cols, flow) in [
        (4usize, Flow::VitisHls),
        (8, Flow::TapaSingle),
        (12, Flow::TapaCs { n_fpgas: 2 }),
        (16, Flow::TapaCs { n_fpgas: 3 }),
        (20, Flow::TapaCs { n_fpgas: 4 }),
    ] {
        let cfg = CnnConfig { rows: 13, cols, n_fpgas: flow.n_fpgas() };
        let total = cnn::grid_resources(&cfg);
        let dsp_pct = total.dsp as f64 * 100.0 / device.resources().dsp as f64;
        // Does a single device route it? Try the single-FPGA flow.
        let single_graph = cnn::build(&CnnConfig { n_fpgas: 1, ..cfg });
        let cluster1 = paper_cluster(1);
        let fits_single = suite_compiler(cluster1).compile(&single_graph, Flow::TapaSingle).is_ok();
        let g = cnn::build(&cfg);
        let (run, _) = run_flow(&g, flow)?;
        println!(
            "13x{:<5} {:>5} {:>7.1}% {:>9} {:>10} {:>8.3} ms",
            cols,
            cfg.pes(),
            dsp_pct,
            if fits_single { "yes" } else { "no" },
            flow.label(),
            run.latency_s * 1e3,
        );
    }
    println!("\ninter-FPGA transfer volumes (Table 7):");
    for cols in [4, 8, 12, 16, 20] {
        let cfg = CnnConfig { rows: 13, cols, n_fpgas: 1 };
        println!("  13x{cols:<3} → {:>6.2} MB", cfg.transfer_volume_mb());
    }
    Ok(())
}
