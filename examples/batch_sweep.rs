//! Batch compilation: a multi-design sweep on the sharded work queue.
//!
//! Builds the four paper benchmarks at two cluster sizes each, compiles
//! all eight designs as ONE `BatchCompiler` batch — sharing the solve
//! cache across designs and filling the machine's cores — and prints the
//! per-job outcomes, the per-stage wall-clock totals and the staged view
//! of a single job (per-stage timings + failure attribution).
//!
//! ```sh
//! cargo run --release --example batch_sweep
//! TAPACS_BATCH_THREADS=1 cargo run --release --example batch_sweep  # pinned
//! ```

use tapa_cs::apps::suite::{build_for, default_param, paper_cluster, suite_config, Benchmark};
use tapa_cs::core::{BatchCompiler, CompileJob, Flow, Stage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sweep: every benchmark at F2 and F4.
    let mut jobs = Vec::new();
    for bench in Benchmark::ALL {
        for n_fpgas in [2usize, 4] {
            let flow = Flow::TapaCs { n_fpgas };
            let graph = build_for(bench, flow, default_param(bench));
            jobs.push(
                CompileJob::new(format!("{}/{}", bench.name(), flow.label()), graph, flow)
                    .on_cluster(paper_cluster(n_fpgas)),
            );
        }
    }

    let outcome = BatchCompiler::with_config(paper_cluster(1), suite_config()).compile(jobs);
    print!("{}", outcome.report.render_table());

    // Per-job results arrive in input order; a design that does not fit
    // fails its own slot without aborting the queue.
    println!("\nachieved frequencies:");
    for (result, job) in outcome.results.iter().zip(&outcome.report.jobs) {
        match result {
            Ok(design) => println!("  {:<14} {:>4.0} MHz", job.name, design.design_freq_mhz()),
            Err(e) => println!("  {:<14} failed at {:?}: {e}", job.name, job.failed_stage),
        }
    }

    // The staged view of one job: where the compile time went.
    let stencil = &outcome.report.jobs[0];
    println!("\n{} stage breakdown:", stencil.name);
    for t in &stencil.timings {
        println!("  {:<12} {:>8.3} ms", t.stage.name(), t.wall.as_secs_f64() * 1e3);
    }
    let l1 = stencil.timings.iter().find(|t| t.stage == Stage::Partition);
    if let Some(l1) = l1 {
        println!("  (the paper's L1 overhead is the partition stage: {:?})", l1.wall);
    }
    Ok(())
}
