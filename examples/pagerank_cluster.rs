//! PageRank over SNAP-like graphs on 1-8 FPGAs (§5.3, §5.7).
//!
//! Includes the 2-node 8-FPGA configuration where intermediate data stages
//! through the hosts over 10 Gbps Ethernet.
//!
//! ```sh
//! cargo run --release --example pagerank_cluster
//! ```

use tapa_cs::apps::data;
use tapa_cs::apps::pagerank::{self, PageRankConfig};
use tapa_cs::apps::suite::run_flow;
use tapa_cs::core::Flow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional sanity first: real PageRank on a scaled-down R-MAT clone.
    let spec = data::snap_network("web-Google").expect("table 5 dataset");
    let mini = data::rmat_like(spec, 10_000, 42);
    let ranks = pagerank::pagerank(&mini, 30);
    let mass: f64 = ranks.iter().sum();
    println!(
        "functional check: {} nodes / {} edges (mini {}), rank mass {:.6}\n",
        mini.nodes,
        mini.edges.len(),
        spec.name,
        mass
    );

    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>9}",
        "dataset", "flow", "freq MHz", "latency s", "speedup"
    );
    for net in data::snap_networks() {
        let mut baseline = None;
        for flow in [
            Flow::VitisHls,
            Flow::TapaCs { n_fpgas: 2 },
            Flow::TapaCs { n_fpgas: 4 },
            Flow::TapaCs { n_fpgas: 8 },
        ] {
            let g = pagerank::build(&PageRankConfig::paper(net, flow.n_fpgas()));
            let (run, _) = run_flow(&g, flow)?;
            let base = *baseline.get_or_insert(run.latency_s);
            println!(
                "{:<18} {:>6} {:>10.0} {:>10.3} {:>8.2}x{}",
                net.name,
                flow.label(),
                run.freq_mhz,
                run.latency_s,
                base / run.latency_s,
                if run.inter_node_bytes > 0 { "  (2 nodes, host-staged)" } else { "" },
            );
        }
    }
    Ok(())
}
