//! Quickstart: build a small dataflow design, compile it for a 2-FPGA ring
//! with TAPA-CS, and inspect the partition, floorplan, frequency and
//! simulated latency.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tapa_cs::core::{BatchCompiler, CompileJob, Flow};
use tapa_cs::fpga::{Device, Resources};
use tapa_cs::graph::{Fifo, Task, TaskGraph};
use tapa_cs::net::{Cluster, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy streaming pipeline: HBM → 6 PEs → HBM. Each task carries the
    // resource profile "parallel synthesis" would report.
    let mut g = TaskGraph::new("quickstart");
    let pe_res = Resources::new(60_000, 110_000, 90, 250, 12);
    let rd = g.add_task(
        Task::hbm_read("reader", Resources::new(30_000, 55_000, 40, 0, 8), 0, 512, 128 * 1024)
            .with_total_blocks(256),
    );
    let mut prev = rd;
    for i in 0..6 {
        let pe = g.add_task(
            Task::compute(format!("pe{i}"), pe_res)
                .with_cycles_per_block(20_000)
                .with_total_blocks(256),
        );
        g.add_fifo(Fifo::new(format!("link{i}"), prev, pe, 512).with_block_bytes(64 * 1024));
        prev = pe;
    }
    let wr = g.add_task(
        Task::hbm_write("writer", Resources::new(30_000, 55_000, 40, 0, 8), 1, 512, 128 * 1024)
            .with_total_blocks(256),
    );
    g.add_fifo(Fifo::new("out", prev, wr, 512).with_block_bytes(64 * 1024));

    // A 2-FPGA ring of Alveo U55C cards. The three flows compile as one
    // shared batch: a sharded work queue over scoped worker threads, with
    // the solve cache shared across the designs.
    let cluster = Cluster::single_node(Device::u55c(), 2, Topology::Ring);
    let jobs = [Flow::VitisHls, Flow::TapaSingle, Flow::TapaCs { n_fpgas: 2 }]
        .map(|flow| CompileJob::new(flow.label(), g.clone(), flow))
        .to_vec();
    let outcome = BatchCompiler::new(cluster.clone()).compile(jobs);
    let mut designs = Vec::new();
    for result in outcome.results {
        let design = result?;
        let sim = design.simulate(&cluster)?;
        println!(
            "{:<5}  freq {:>5.0} MHz   latency {:>8.3} ms   cut {:>5} bits   net {:>6.2} MB",
            design.flow.label(),
            design.design_freq_mhz(),
            sim.makespan_s * 1e3,
            design.partition.cut_width_bits,
            sim.inter_fpga_bytes as f64 / 1e6,
        );
        designs.push(design);
    }

    // Show where the 2-FPGA flow placed every task, and where the compile
    // time went (the staged pipeline records per-stage wall-clock on every
    // compiled design) — straight off the batch result, no recompile.
    let design = designs.pop().expect("three jobs in, three designs out");
    println!("\ncompile stages:");
    for t in &design.stage_timings {
        println!("  {:<12} {:>8.3} ms", t.stage.name(), t.wall.as_secs_f64() * 1e3);
    }
    println!("\ntask placement (FPGA / slot):");
    for (id, t) in design.graph.tasks() {
        let slot = design.slot_of_task[id.index()];
        println!(
            "  {:<12} → FPGA {}  slot ({},{})",
            t.name,
            design.placement.fpga_of_task[id.index()],
            slot.row,
            slot.col
        );
    }
    Ok(())
}
