//! The paper's §3 motivating example: KNN on 1-4 FPGAs.
//!
//! Shows why multi-FPGA designs beat a single FPGA even when the design
//! *could* route on one: the single-FPGA baseline is stuck with the
//! 256-bit/32 KB port configuration (~51% of per-bank HBM bandwidth),
//! while the partitioned design routes the optimal 512-bit/128 KB ports.
//!
//! ```sh
//! cargo run --release --example knn_scaling
//! ```

use tapa_cs::apps::knn::{self, KnnConfig};
use tapa_cs::apps::suite::{paper_flows, run_flows_batch};
use tapa_cs::fpga::HbmModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §3 bandwidth story first.
    let hbm = HbmModel::hbm2_16gb();
    println!("per-bank HBM bandwidth saturation (§3):");
    println!("  256-bit / 32 KB  → {:>5.1}%", hbm.port_efficiency(256, 32 * 1024) * 100.0);
    println!("  512-bit / 128 KB → {:>5.1}%\n", hbm.port_efficiency(512, 128 * 1024) * 100.0);

    // K = 10, N = 4M, D = 8 across 1-4 FPGAs: the whole scaling sweep
    // compiles as ONE shared batch (sharded work queue + shared solve
    // cache) instead of flow by flow.
    println!("KNN N=4M D=8 K=10:");
    let configs: Vec<KnnConfig> =
        paper_flows(4).iter().map(|f| KnnConfig::paper(4_000_000, 8, f.n_fpgas())).collect();
    let points =
        configs.iter().zip(paper_flows(4)).map(|(cfg, flow)| (knn::build(cfg), flow)).collect();
    let runs = run_flows_batch(points)?;
    let baseline = runs[0].0.latency_s;
    for ((run, design), cfg) in runs.iter().zip(&configs) {
        println!(
            "  {:<5} port {:>3}b/{:>4}KB  blue {:>2}  freq {:>3.0} MHz  latency {:>7.3} ms  speed-up {:>4.2}x  cut {:>4} bits",
            run.flow.label(),
            cfg.port_width_bits,
            cfg.buffer_bytes / 1024,
            cfg.blue_per_fpga * run.flow.n_fpgas(),
            run.freq_mhz,
            run.latency_s * 1e3,
            baseline / run.latency_s,
            design.partition.cut_width_bits,
        );
    }
    println!("\nnote: inter-FPGA traffic carries only K-sized partial results,");
    println!("independent of N and D (§5.4).");
    Ok(())
}
