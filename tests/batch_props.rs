//! Property-based determinism guarantees of the batch layer, extending
//! the PR 2/3 solver guarantees: batch-compiling a *shuffled* job list at
//! any worker count yields bit-identical `CompiledDesign`s (frequency,
//! placement, slot assignment) to a plain sequential `compile()` loop.

use proptest::prelude::*;
use tapa_cs::core::{BatchCompiler, CompileJob, Compiler, CompilerConfig, Flow};
use tapa_cs::fpga::{Device, Resources};
use tapa_cs::graph::{Fifo, Task, TaskGraph};
use tapa_cs::net::{Cluster, Topology};

/// Deterministic xorshift-ish stream for graph construction/shuffling.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> usize {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize
    }
}

/// A small random pipeline-with-branches design, compilable on 1-2 FPGAs.
fn random_graph(name: String, rng: &mut Lcg) -> TaskGraph {
    let n = 4 + rng.next() % 8;
    let mut g = TaskGraph::new(name);
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let r = Resources::new(
                (10_000 + rng.next() % 50_000) as u64,
                (20_000 + rng.next() % 100_000) as u64,
                (rng.next() % 60) as u64,
                (rng.next() % 150) as u64,
                (rng.next() % 15) as u64,
            );
            g.add_task(
                Task::compute(format!("t{i}"), r).with_cycles_per_block(500).with_total_blocks(16),
            )
        })
        .collect();
    for i in 1..n {
        let from = rng.next() % i;
        let width = [64u32, 128, 256, 512][rng.next() % 4];
        g.add_fifo(Fifo::new(format!("e{i}"), ids[from], ids[i], width));
    }
    g
}

fn cluster4() -> Cluster {
    Cluster::single_node(Device::u55c(), 4, Topology::Ring)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shuffled_batch_matches_sequential_loop_at_any_thread_count(seed in any::<u64>()) {
        let mut rng = Lcg(seed | 1);
        let n_jobs = 3 + rng.next() % 4;
        let mut jobs: Vec<CompileJob> = (0..n_jobs)
            .map(|i| {
                let flow = match rng.next() % 3 {
                    0 => Flow::TapaSingle,
                    1 => Flow::TapaCs { n_fpgas: 2 },
                    _ => Flow::TapaCs { n_fpgas: 3 },
                };
                CompileJob::new(format!("job{i}"), random_graph(format!("g{i}"), &mut rng), flow)
            })
            .collect();
        // Shuffle the submission order (Fisher-Yates on the rng stream).
        for i in (1..jobs.len()).rev() {
            jobs.swap(i, rng.next() % (i + 1));
        }

        // Cache OFF on the reference and most batch runs: a warm
        // process-wide cache would answer every batch solve by replay and
        // the bit-identity below would no longer exercise genuinely
        // concurrent solving. One final cached run then covers the
        // replay path too.
        let mut live = CompilerConfig::default();
        live.solver.cache = false;

        // Reference: a plain sequential compile() loop over the shuffled
        // list.
        let compiler = Compiler::with_config(cluster4(), live.clone());
        let reference: Vec<_> =
            jobs.iter().map(|j| compiler.compile(&j.graph, j.flow)).collect();

        for (threads, cache) in [(1usize, false), (2, false), (4, false), (2, true)] {
            let mut config = live.clone();
            config.solver.cache = cache;
            let outcome =
                BatchCompiler::with_config(cluster4(), config).threads(threads).compile(jobs.clone());
            prop_assert_eq!(outcome.results.len(), reference.len());
            for (i, (got, want)) in outcome.results.iter().zip(&reference).enumerate() {
                match (got, want) {
                    (Ok(got), Ok(want)) => {
                        prop_assert_eq!(
                            &got.placement.fpga_of_task, &want.placement.fpga_of_task,
                            "job {} placement diverged at {} threads (cache {})", i, threads, cache
                        );
                        prop_assert_eq!(
                            &got.slot_of_task, &want.slot_of_task,
                            "job {} slots diverged at {} threads (cache {})", i, threads, cache
                        );
                        prop_assert_eq!(
                            &got.timing.freq_mhz, &want.timing.freq_mhz,
                            "job {} frequency diverged at {} threads (cache {})", i, threads, cache
                        );
                    }
                    (Err(got), Err(want)) => prop_assert_eq!(got, want),
                    (got, want) => prop_assert!(
                        false,
                        "job {} outcome diverged at {} threads (cache {}): {:?} vs {:?}",
                        i, threads, cache, got, want
                    ),
                }
            }
        }
    }
}
