//! Property-based integration tests over the compiler pipeline: for
//! arbitrary random dataflow graphs, the partitioner/floorplanner/
//! pipeliner invariants must hold.

use proptest::prelude::*;
use tapa_cs::core::floorplan::{floorplan, FloorplanConfig};
use tapa_cs::core::partition::{comm_cost, partition, usable_capacity, PartitionConfig};
use tapa_cs::core::pipeline::pipeline;
use tapa_cs::fpga::{Device, Resources};
use tapa_cs::graph::{algo, Fifo, Task, TaskGraph};
use tapa_cs::net::{Cluster, Topology};

/// Random connected-ish DAG of small tasks.
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut g = TaskGraph::new("prop");
        let mut s = seed;
        let mut rng = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let r = Resources::new(
                    (5_000 + rng() % 60_000) as u64,
                    (10_000 + rng() % 120_000) as u64,
                    (rng() % 80) as u64,
                    (rng() % 200) as u64,
                    (rng() % 20) as u64,
                );
                g.add_task(Task::compute(format!("t{i}"), r))
            })
            .collect();
        // Forward edges only (DAG), ~1.5 per node.
        for i in 1..n {
            let from = rng() % i;
            let width = [32u32, 64, 128, 256, 512][rng() % 5];
            g.add_fifo(Fifo::new(format!("e{i}"), ids[from], ids[i], width));
            if rng() % 2 == 0 && i >= 2 {
                let from2 = rng() % i;
                g.add_fifo(Fifo::new(format!("x{i}"), ids[from2], ids[i], 64));
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partitioner_respects_thresholds_and_reports_true_cost(g in arb_graph()) {
        let cluster = Cluster::single_node(Device::u55c(), 2, Topology::Ring);
        let cfg = PartitionConfig { time_limit_s: 0.5, ..Default::default() };
        let p = match partition(&g, &cluster, 2, &cfg) {
            Ok(p) => p,
            Err(_) => return Ok(()), // legitimately infeasible random instance
        };
        let cap = usable_capacity(&cluster, 2);
        for used in &p.used {
            prop_assert!(used.fits_within(&cap, cfg.threshold + 1e-9));
        }
        // Reported cost equals recomputed equation-2 cost.
        let recomputed = comm_cost(&g, &cluster, &p.assignment);
        prop_assert!((p.comm_cost - recomputed).abs() < 1e-9);
        // Cut width consistent with assignment.
        prop_assert_eq!(p.cut_width_bits, algo::cut_width_bits(&g, &p.assignment));
    }

    #[test]
    fn floorplanner_places_every_task_in_bounds(g in arb_graph()) {
        let device = Device::u55c();
        let cfg = FloorplanConfig { time_limit_s: 0.5, ..Default::default() };
        let assignment = vec![0usize; g.num_tasks()];
        let fp = match floorplan(&g, &assignment, 1, &device, &[Resources::ZERO], &cfg) {
            Ok(fp) => fp,
            Err(_) => return Ok(()),
        };
        for slot in &fp.slot_of_task {
            prop_assert!(slot.row < device.rows() && slot.col < device.cols());
        }
        // Per-slot accounting sums to the graph total.
        let total: Resources = fp.slot_used[0].iter().copied().sum();
        prop_assert_eq!(total, g.total_resources());
    }

    #[test]
    fn pipelining_balances_every_reconvergent_path(g in arb_graph()) {
        let device = Device::u55c();
        let cfg = FloorplanConfig { time_limit_s: 0.5, ..Default::default() };
        let assignment = vec![0usize; g.num_tasks()];
        let fp = match floorplan(&g, &assignment, 1, &device, &[Resources::ZERO], &cfg) {
            Ok(fp) => fp,
            Err(_) => return Ok(()),
        };
        let rep = pipeline(&g, &assignment, &fp.slot_of_task);
        prop_assert!(rep.balanced, "DAGs must always balance");
        // The invariant: L(src) + stages(e) == L(dst) for every edge.
        let layers = algo::topo_layers(&g).unwrap();
        let mut dist = vec![0u32; g.num_tasks()];
        for layer in &layers {
            for &v in layer {
                for &fid in g.in_fifos(v) {
                    let f = g.fifo(fid);
                    dist[v.index()] =
                        dist[v.index()].max(dist[f.src.index()] + rep.stages(fid.index()));
                }
            }
        }
        for (fid, f) in g.fifos() {
            prop_assert_eq!(
                dist[f.src.index()] + rep.stages(fid.index()),
                dist[f.dst.index()]
            );
        }
    }

    #[test]
    fn simulation_conserves_firings(g in arb_graph()) {
        use tapa_cs::sim::{simulate, Placement};
        // Give every task a uniform block count so the dataflow drains.
        let mut g = g;
        for t in g.task_ids().collect::<Vec<_>>() {
            g.task_mut(t).total_blocks = 16;
            g.task_mut(t).cycles_per_block = 100;
        }
        let cluster = Cluster::single(Device::u55c());
        let p = Placement::single_fpga(&g, 300.0);
        let rep = match simulate(&g, &p, &cluster) {
            Ok(r) => r,
            Err(_) => return Ok(()), // fan-in mismatches may legitimately deadlock
        };
        prop_assert_eq!(rep.total_firings, 16 * g.num_tasks() as u64);
        prop_assert!(rep.makespan_s > 0.0);
    }
}
