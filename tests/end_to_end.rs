//! Cross-crate integration tests: the full seven-step pipeline plus
//! simulation on each paper benchmark at reduced scale, and the headline
//! orderings the paper claims.

use tapa_cs::apps::suite::{build_for, default_param, paper_flows, run_flow, Benchmark};
use tapa_cs::apps::{knn, pagerank, stencil};
use tapa_cs::core::{CompileError, Flow};

#[test]
fn every_benchmark_compiles_and_simulates_on_two_fpgas() {
    for bench in Benchmark::ALL {
        let flow = Flow::TapaCs { n_fpgas: 2 };
        let graph = build_for(bench, flow, default_param(bench));
        let (run, design) =
            run_flow(&graph, flow).unwrap_or_else(|e| panic!("{bench:?} failed: {e}"));
        assert!(run.latency_s > 0.0, "{bench:?} latency");
        assert!(run.freq_mhz > 100.0 && run.freq_mhz <= 300.0, "{bench:?} freq {}", run.freq_mhz);
        assert_eq!(design.n_fpgas(), 2);
        // Threshold respected on every FPGA (equation 1).
        assert!(design.timing.worst_slot_utilization() <= 0.95 + 1e-9);
    }
}

#[test]
fn frequency_ordering_holds_per_benchmark() {
    // The paper's frequency claim: TAPA-CS ≥ TAPA ≥ Vitis for every app.
    for bench in Benchmark::ALL {
        let mut freqs = Vec::new();
        for flow in [Flow::VitisHls, Flow::TapaSingle, Flow::TapaCs { n_fpgas: 2 }] {
            let graph = build_for(bench, flow, default_param(bench));
            let (run, _) = run_flow(&graph, flow).unwrap();
            freqs.push(run.freq_mhz);
        }
        // The paper's robust claim: floorplanning + pipelining beats plain
        // Vitis. (TAPA-single vs TAPA-CS ordering can wobble by a few MHz
        // when the multi-FPGA configuration uses heavier wide-port
        // modules; see EXPERIMENTS.md.)
        assert!(freqs[0] <= freqs[1] + 1e-6 && freqs[0] <= freqs[2] + 1e-6, "{bench:?}: {freqs:?}");
    }
}

#[test]
fn multi_fpga_beats_vitis_baseline() {
    // Table 3's headline: F2 beats F1-V on every benchmark.
    for bench in Benchmark::ALL {
        let param = default_param(bench);
        let gv = build_for(bench, Flow::VitisHls, param);
        let (v, _) = run_flow(&gv, Flow::VitisHls).unwrap();
        let g2 = build_for(bench, Flow::TapaCs { n_fpgas: 2 }, param);
        let (f2, _) = run_flow(&g2, Flow::TapaCs { n_fpgas: 2 }).unwrap();
        assert!(
            f2.latency_s < v.latency_s,
            "{bench:?}: F2 {} !< F1-V {}",
            f2.latency_s,
            v.latency_s
        );
    }
}

#[test]
fn knn_cut_traffic_is_k_bound() {
    // §5.4: inter-FPGA transfer size independent of the search space.
    let small = knn::build(&knn::KnnConfig::paper(1_000_000, 2, 2));
    let big = knn::build(&knn::KnnConfig::paper(8_000_000, 2, 2));
    let flow = Flow::TapaCs { n_fpgas: 2 };
    let (rs, _) = run_flow(&small, flow).unwrap();
    let (rb, _) = run_flow(&big, flow).unwrap();
    // 8× the data, (almost) the same network traffic per block count scale.
    let per_block_s = rs.inter_fpga_bytes as f64;
    let per_block_b = rb.inter_fpga_bytes as f64;
    assert!(per_block_b < per_block_s * 10.0, "{per_block_s} vs {per_block_b}");
    assert!(rb.latency_s > rs.latency_s, "more data must take longer");
}

#[test]
fn stencil_gains_shrink_with_iterations() {
    // §5.2: the relative multi-FPGA gain at 512 iterations is smaller than
    // at 64 iterations (compute-bound + sequential transfers).
    let speedup = |iters: u64| {
        let gv = stencil::build(&stencil::StencilConfig::paper(iters as usize, 1));
        let (v, _) = run_flow(&gv, Flow::VitisHls).unwrap();
        let g4 = stencil::build(&stencil::StencilConfig::paper(iters as usize, 4));
        let (f4, _) = run_flow(&g4, Flow::TapaCs { n_fpgas: 4 }).unwrap();
        v.latency_s / f4.latency_s
    };
    let s64 = speedup(64);
    let s512 = speedup(512);
    assert!(s512 < s64, "gains must shrink as iterations grow: 64→{s64:.2}x, 512→{s512:.2}x");
}

#[test]
fn pagerank_scales_superlinearly_past_two_fpgas() {
    // §5.3: constant transfer volume + parallel launch ⇒ F4 > 2 × F2 gain
    // is not required, but F4 must beat F2 clearly.
    let net = tapa_cs::apps::data::snap_network("web-Google").unwrap();
    let latency = |n: usize| {
        let g = pagerank::build(&pagerank::PageRankConfig::paper(net, n));
        let flow = if n == 1 { Flow::VitisHls } else { Flow::TapaCs { n_fpgas: n } };
        run_flow(&g, flow).unwrap().0.latency_s
    };
    let l1 = latency(1);
    let l2 = latency(2);
    let l4 = latency(4);
    assert!(l2 < l1 && l4 < l2, "l1 {l1} l2 {l2} l4 {l4}");
    assert!(l1 / l4 > 2.0, "F4 speed-up too small: {}", l1 / l4);
}

#[test]
fn eight_fpgas_cross_node_staging_hurts_stencil() {
    // §5.7: the sequential stencil loses across nodes while PageRank wins.
    let g8 = stencil::build(&stencil::StencilConfig::paper(512, 8));
    let (r8, _) = run_flow(&g8, Flow::TapaCs { n_fpgas: 8 }).unwrap();
    assert!(r8.inter_node_bytes > 0, "two-node run must stage across hosts");
    let g4 = stencil::build(&stencil::StencilConfig::paper(512, 4));
    let (r4, _) = run_flow(&g4, Flow::TapaCs { n_fpgas: 4 }).unwrap();
    assert!(
        r8.latency_s > r4.latency_s,
        "adding the second node must not help the sequential stencil: F4 {} vs F8 {}",
        r4.latency_s,
        r8.latency_s
    );
}

#[test]
fn flows_expose_expected_artifacts() {
    let graph = build_for(Benchmark::Knn, Flow::TapaCs { n_fpgas: 2 }, 8);
    let (_, design) = run_flow(&graph, Flow::TapaCs { n_fpgas: 2 }).unwrap();
    // Comm insertion added endpoints; pipelining inserted registers; HBM
    // channels were bound.
    assert!(design.graph.num_tasks() > graph.num_tasks());
    assert!(design.pipeline.total_register_bits > 0);
    assert!(design.channels_used.iter().sum::<usize>() > 0);
    assert!(design.ports_used.iter().any(|&p| p > 0));
    assert_eq!(design.utilization.len(), 2);
}

#[test]
fn infeasible_designs_error_cleanly_across_the_stack() {
    // A single-FPGA flow on a 4-FPGA-sized CNN grid must fail with
    // InsufficientResources or RoutingFailure — never panic.
    let g = build_for(Benchmark::Cnn, Flow::TapaCs { n_fpgas: 4 }, 0);
    let cluster = tapa_cs::apps::suite::paper_cluster(1);
    let compiler = tapa_cs::apps::suite::suite_compiler(cluster);
    match compiler.compile(&g, Flow::VitisHls) {
        Err(CompileError::InsufficientResources { .. })
        | Err(CompileError::RoutingFailure { .. }) => {}
        other => panic!("expected resource failure, got {other:?}"),
    }
}

#[test]
fn all_flows_run_for_every_benchmark_quickly_at_f3() {
    // Odd FPGA counts exercise the uneven bisection path.
    for bench in [Benchmark::Stencil, Benchmark::PageRank] {
        let flow = Flow::TapaCs { n_fpgas: 3 };
        let graph = build_for(bench, flow, default_param(bench));
        let (run, design) = run_flow(&graph, flow).unwrap();
        assert_eq!(design.n_fpgas(), 3);
        assert!(run.latency_s > 0.0);
    }
    let _ = paper_flows(4);
}
